package sit

import (
	"math/rand"
	"strings"
	"testing"

	"condsel/internal/engine"
	"condsel/internal/histogram"
)

// shopDB builds a small correlated star: orders(id, price) and
// lineitem(oid, qty), where expensive orders have many line items (the
// paper's §1 motivating skew).
func shopDB(rng *rand.Rand, nOrders int) (*engine.Catalog, map[string]engine.AttrID) {
	oid := make([]int64, nOrders)
	price := make([]int64, nOrders)
	var liOID, liQty []int64
	for i := 0; i < nOrders; i++ {
		oid[i] = int64(i)
		price[i] = int64(rng.Intn(1000))
		items := 1
		if price[i] > 800 { // expensive orders have many line items
			items = 20
		}
		for k := 0; k < items; k++ {
			liOID = append(liOID, int64(i))
			liQty = append(liQty, int64(rng.Intn(50)))
		}
	}
	cat := engine.NewCatalog()
	cat.MustAddTable(&engine.Table{Name: "orders", Cols: []*engine.Column{
		{Name: "id", Vals: oid},
		{Name: "price", Vals: price},
	}})
	cat.MustAddTable(&engine.Table{Name: "lineitem", Cols: []*engine.Column{
		{Name: "oid", Vals: liOID},
		{Name: "qty", Vals: liQty},
	}})
	attrs := map[string]engine.AttrID{
		"o.id":    cat.MustAttr("orders.id"),
		"o.price": cat.MustAttr("orders.price"),
		"l.oid":   cat.MustAttr("lineitem.oid"),
		"l.qty":   cat.MustAttr("lineitem.qty"),
	}
	return cat, attrs
}

func TestSITIdentityAndNaming(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(1)), 50)
	join := engine.Join(a["l.oid"], a["o.id"])
	s := NewSIT(cat, a["o.price"], []engine.Pred{join}, &histogram.Histogram{}, 0.5)
	if s.IsBase() {
		t.Fatalf("SIT with expression reported as base")
	}
	if s.ExprSize() != 1 {
		t.Fatalf("ExprSize = %d", s.ExprSize())
	}
	name := s.Name(cat)
	if !strings.Contains(name, "SIT(orders.price |") {
		t.Fatalf("Name = %q", name)
	}
	base := NewSIT(cat, a["o.price"], nil, &histogram.Histogram{}, 0)
	if !base.IsBase() || base.Name(cat) != "H(orders.price)" {
		t.Fatalf("base SIT misbehaves: %q", base.Name(cat))
	}
	if s.ID() == base.ID() {
		t.Fatalf("distinct SITs share ID")
	}
	s2 := NewSIT(cat, a["o.price"], []engine.Pred{engine.Join(a["o.id"], a["l.oid"])}, nil, 0)
	if s.ID() != s2.ID() {
		t.Fatalf("structurally equal SITs have different IDs: %q vs %q", s.ID(), s2.ID())
	}
}

func TestSITMatching(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(2)), 50)
	join := engine.Join(a["l.oid"], a["o.id"])
	filter := engine.Filter(a["o.price"], 0, 500)
	preds := []engine.Pred{filter, join}
	s := NewSIT(cat, a["o.price"], []engine.Pred{join}, nil, 0)

	if !s.MatchesSubset(preds, engine.NewPredSet(1)) {
		t.Errorf("should match {join}")
	}
	if !s.MatchesSubset(preds, engine.NewPredSet(0, 1)) {
		t.Errorf("should match {filter, join}")
	}
	if s.MatchesSubset(preds, engine.NewPredSet(0)) {
		t.Errorf("should not match {filter}")
	}
	if got := s.MatchedSet(preds, engine.NewPredSet(0, 1)); got != engine.NewPredSet(1) {
		t.Errorf("MatchedSet = %v", got)
	}

	base := NewSIT(cat, a["o.price"], nil, nil, 0)
	if !base.ExprSubsetOf(s) || s.ExprSubsetOf(base) {
		t.Errorf("ExprSubsetOf wrong")
	}
}

func TestBuilderBaseHistogram(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(3)), 200)
	b := NewBuilder(cat)
	s := b.BuildBase(a["o.price"])
	if !s.IsBase() || s.Diff != 0 {
		t.Fatalf("base SIT wrong: base=%v diff=%v", s.IsBase(), s.Diff)
	}
	if s.Hist.Rows != 200 {
		t.Fatalf("base hist rows = %v", s.Hist.Rows)
	}
	// Cached: second call returns identical histogram.
	if b.BuildBase(a["o.price"]).Hist != s.Hist {
		t.Fatalf("base histogram not cached")
	}
}

// TestBuilderSITCapturesCorrelation is the core §1 scenario: the
// distribution of price over lineitem ⋈ orders is heavily shifted towards
// expensive orders, so the SIT's estimate of price>800 over the join must
// far exceed the base histogram's, and its diff must be large.
func TestBuilderSITCapturesCorrelation(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(4)), 500)
	b := NewBuilder(cat)
	join := engine.Join(a["l.oid"], a["o.id"])
	s := b.Build(a["o.price"], []engine.Pred{join})

	base := b.BuildBase(a["o.price"])
	baseSel := base.Hist.EstimateRange(801, 1000)
	sitSel := s.Hist.EstimateRange(801, 1000)
	if sitSel < 3*baseSel {
		t.Fatalf("SIT should report much higher selectivity over join: base %v, sit %v", baseSel, sitSel)
	}
	if s.Diff < 0.3 {
		t.Fatalf("correlated SIT diff = %v, want substantial", s.Diff)
	}

	// Ground truth cross-check: the SIT's estimate should be close to the
	// true conditional selectivity.
	ev := engine.NewEvaluator(cat)
	preds := []engine.Pred{join, engine.Filter(a["o.price"], 801, 1000)}
	truth := ev.ConditionalSelectivity(engine.NewTableSet(0, 1), preds,
		engine.NewPredSet(1), engine.NewPredSet(0))
	if rel := abs(sitSel-truth) / truth; rel > 0.15 {
		t.Fatalf("SIT estimate %v vs truth %v (rel err %.3f)", sitSel, truth, rel)
	}
}

// TestBuilderSITIndependentJoinHasLowDiff mirrors Example 4: when the join
// does not skew the attribute's distribution, diff ≈ 0.
func TestBuilderSITIndependentJoinHasLowDiff(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	n := 1000
	key := make([]int64, n)
	val := make([]int64, n)
	fk := make([]int64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i)
		val[i] = int64(rng.Intn(100))
		fk[i] = int64(i) // 1:1 FK join, preserves distribution exactly
	}
	cat := engine.NewCatalog()
	cat.MustAddTable(&engine.Table{Name: "S", Cols: []*engine.Column{
		{Name: "k", Vals: key}, {Name: "a", Vals: val},
	}})
	cat.MustAddTable(&engine.Table{Name: "T", Cols: []*engine.Column{
		{Name: "fk", Vals: fk},
	}})
	b := NewBuilder(cat)
	s := b.Build(cat.MustAttr("S.a"),
		[]engine.Pred{engine.Join(cat.MustAttr("S.k"), cat.MustAttr("T.fk"))})
	if s.Diff > 0.05 {
		t.Fatalf("distribution-preserving join should have diff ≈ 0, got %v", s.Diff)
	}
}

func TestBuilderExactDiffOption(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(6)), 300)
	join := engine.Join(a["l.oid"], a["o.id"])
	approx := NewBuilder(cat)
	exact := NewBuilder(cat)
	exact.ExactDiff = true
	da := approx.Build(a["o.price"], []engine.Pred{join}).Diff
	de := exact.Build(a["o.price"], []engine.Pred{join}).Diff
	if abs(da-de) > 0.2 {
		t.Fatalf("approximated diff %v far from exact %v", da, de)
	}
}

func TestBuildGroupSharesEvaluation(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(7)), 200)
	b := NewBuilder(cat)
	join := engine.Join(a["l.oid"], a["o.id"])
	sits := b.BuildGroup([]engine.Pred{join}, []engine.AttrID{a["o.price"], a["l.qty"]})
	if len(sits) != 2 {
		t.Fatalf("BuildGroup returned %d SITs", len(sits))
	}
	if b.Ev.Evaluations != 1 {
		t.Fatalf("BuildGroup ran %d evaluations, want 1", b.Ev.Evaluations)
	}
	if sits[0].Hist.Empty() || sits[1].Hist.Empty() {
		t.Fatalf("group-built SITs have empty histograms")
	}
}

func TestPoolAddAndDedup(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(8)), 50)
	p := NewPool(cat)
	join := engine.Join(a["l.oid"], a["o.id"])
	s1 := NewSIT(cat, a["o.price"], []engine.Pred{join}, nil, 0)
	s2 := NewSIT(cat, a["o.price"], []engine.Pred{join}, nil, 0)
	if !p.Add(s1) {
		t.Fatalf("first Add failed")
	}
	if p.Add(s2) {
		t.Fatalf("duplicate Add accepted")
	}
	if p.Size() != 1 {
		t.Fatalf("Size = %d", p.Size())
	}
	base := NewSIT(cat, a["o.price"], nil, nil, 0)
	p.Add(base)
	if p.Base(a["o.price"]) != base {
		t.Fatalf("Base lookup failed")
	}
	if p.Base(a["l.qty"]) != nil {
		t.Fatalf("Base for absent attr should be nil")
	}
	if got := len(p.OnAttr(a["o.price"])); got != 2 {
		t.Fatalf("OnAttr = %d SITs", got)
	}
	if got := len(p.SITs()); got != 2 {
		t.Fatalf("SITs = %d", got)
	}
}

// TestPoolCandidatesMaximality reproduces Example 2: with SITs over {},
// {p1}, {p2} and {p1,p2,p3} available and Q = {p1,p2}, the candidates are
// exactly SIT(a|p1) and SIT(a|p2).
func TestPoolCandidatesMaximality(t *testing.T) {
	t.Parallel()
	cat := engine.NewCatalog()
	var cols []*engine.Column
	for _, n := range []string{"a", "x", "y", "z"} {
		cols = append(cols, &engine.Column{Name: n, Vals: []int64{1, 2}})
	}
	cat.MustAddTable(&engine.Table{Name: "R", Cols: cols})
	for _, n := range []string{"S", "T", "U"} {
		cat.MustAddTable(&engine.Table{Name: n, Cols: []*engine.Column{{Name: "k", Vals: []int64{1, 2}}}})
	}
	ra := cat.MustAttr("R.a")
	p1 := engine.Join(cat.MustAttr("R.x"), cat.MustAttr("S.k"))
	p2 := engine.Join(cat.MustAttr("R.y"), cat.MustAttr("T.k"))
	p3 := engine.Join(cat.MustAttr("R.z"), cat.MustAttr("U.k"))

	pool := NewPool(cat)
	sBase := NewSIT(cat, ra, nil, nil, 0)
	s1 := NewSIT(cat, ra, []engine.Pred{p1}, nil, 0)
	s2 := NewSIT(cat, ra, []engine.Pred{p2}, nil, 0)
	s123 := NewSIT(cat, ra, []engine.Pred{p1, p2, p3}, nil, 0)
	for _, s := range []*SIT{sBase, s1, s2, s123} {
		pool.Add(s)
	}

	preds := []engine.Pred{p1, p2} // query conditioning set Q = {p1, p2}
	got := pool.Candidates(preds, ra, engine.FullPredSet(2))
	if len(got) != 2 {
		t.Fatalf("candidates = %d, want 2", len(got))
	}
	for _, s := range got {
		if s == sBase || s == s123 {
			t.Fatalf("non-maximal or over-constrained SIT selected: %s", s.Name(cat))
		}
	}
	if pool.MatchCalls() != 1 {
		t.Fatalf("MatchCalls = %d, want 1", pool.MatchCalls())
	}
	pool.ResetMatchCalls()
	if pool.MatchCalls() != 0 {
		t.Fatalf("ResetMatchCalls failed")
	}

	// With Q = ∅ only the base histogram qualifies.
	baseOnly := pool.Candidates(preds, ra, 0)
	if len(baseOnly) != 1 || baseOnly[0] != sBase {
		t.Fatalf("empty Q should yield the base histogram")
	}
}

func TestWorkloadSpecs(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(9)), 50)
	join := engine.Join(a["l.oid"], a["o.id"])
	q := engine.NewQuery(cat, []engine.Pred{
		engine.Filter(a["o.price"], 0, 500),
		join,
	})
	specs0 := WorkloadSpecs(cat, []*engine.Query{q}, 0)
	// Base histograms for the 3 distinct attrs (price, l.oid, o.id).
	if len(specs0) != 3 {
		t.Fatalf("J0 specs = %d, want 3", len(specs0))
	}
	specs1 := WorkloadSpecs(cat, []*engine.Query{q}, 1)
	// J1 adds SIT(a|join) for each of the 3 attrs (all tables covered).
	if len(specs1) != 6 {
		t.Fatalf("J1 specs = %d, want 6", len(specs1))
	}
	// Dedup across repeated queries.
	specsDup := WorkloadSpecs(cat, []*engine.Query{q, q}, 1)
	if len(specsDup) != len(specs1) {
		t.Fatalf("duplicate queries inflate specs: %d vs %d", len(specsDup), len(specs1))
	}
}

func TestBuildWorkloadPool(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(10)), 200)
	join := engine.Join(a["l.oid"], a["o.id"])
	q := engine.NewQuery(cat, []engine.Pred{
		engine.Filter(a["o.price"], 0, 500),
		join,
	})
	b := NewBuilder(cat)
	pool := BuildWorkloadPool(b, []*engine.Query{q}, 1)
	if pool.Size() != 6 {
		t.Fatalf("pool size = %d, want 6", pool.Size())
	}
	// The join expression must have been evaluated exactly once.
	if b.Ev.Evaluations != 1 {
		t.Fatalf("evaluations = %d, want 1", b.Ev.Evaluations)
	}
	for _, s := range pool.SITs() {
		if s.Hist == nil {
			t.Fatalf("pool SIT %s has nil histogram", s.Name(cat))
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
