package sit

import (
	"math/rand"
	"strings"
	"testing"

	"condsel/internal/engine"
)

func TestSIT2DIdentityAndNaming(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(60)), 100)
	b := NewBuilder(cat)
	s, err := b.Build2D(a["o.id"], a["o.price"], nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.ExprSize() != 0 {
		t.Fatalf("base 2-D SIT has expr size %d", s.ExprSize())
	}
	if name := s.Name(cat); !strings.Contains(name, "H(orders.id, orders.price)") {
		t.Fatalf("Name = %q", name)
	}
	join := engine.Join(a["l.oid"], a["o.id"])
	s2, err := b.Build2D(a["o.id"], a["o.price"], []engine.Pred{join})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s2.Name(cat), "SIT(orders.id, orders.price |") {
		t.Fatalf("Name = %q", s2.Name(cat))
	}
	if s.ID() == s2.ID() {
		t.Fatalf("distinct 2-D SITs share ID")
	}
}

func TestBuild2DValidation(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(61)), 50)
	b := NewBuilder(cat)
	if _, err := b.Build2D(a["o.price"], a["l.qty"], nil); err == nil {
		t.Fatalf("cross-table 2-D SIT accepted")
	}
}

func TestBuild2DOverExpression(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(62)), 200)
	b := NewBuilder(cat)
	join := engine.Join(a["l.oid"], a["o.id"])
	s, err := b.Build2D(a["o.id"], a["o.price"], []engine.Pred{join})
	if err != nil {
		t.Fatal(err)
	}
	// The join result has one tuple per line item; the histogram must see
	// that many rows.
	ev := engine.NewEvaluator(cat)
	want := ev.Count(engine.NewTableSet(0, 1), []engine.Pred{join}, engine.NewPredSet(0))
	if s.Hist.Rows != want {
		t.Fatalf("2-D SIT rows %v, want %v", s.Hist.Rows, want)
	}
}

func TestPool2DAddAndCandidates(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(63)), 100)
	b := NewBuilder(cat)
	pool := NewPool(cat)

	base, err := b.Build2D(a["o.id"], a["o.price"], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Add2D(base) {
		t.Fatalf("first Add2D failed")
	}
	if pool.Add2D(base) {
		t.Fatalf("duplicate Add2D accepted")
	}
	if pool.Size2D() != 1 {
		t.Fatalf("Size2D = %d", pool.Size2D())
	}

	join := engine.Join(a["l.oid"], a["o.id"])
	preds := []engine.Pred{join, engine.Filter(a["l.qty"], 0, 10)}
	got := pool.Candidates2D(preds, a["o.id"], a["o.price"], engine.NewPredSet(1))
	if len(got) != 1 || got[0] != base {
		t.Fatalf("Candidates2D = %v", got)
	}
	// Wrong attribute pair yields nothing.
	if got := pool.Candidates2D(preds, a["o.price"], a["o.id"], engine.NewPredSet(1)); len(got) != 0 {
		t.Fatalf("swapped pair matched: %v", got)
	}
}

func TestPool2DMaximality(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(64)), 100)
	b := NewBuilder(cat)
	pool := NewPool(cat)
	join := engine.Join(a["l.oid"], a["o.id"])

	base, _ := b.Build2D(a["o.id"], a["o.price"], nil)
	over, err := b.Build2D(a["o.id"], a["o.price"], []engine.Pred{join})
	if err != nil {
		t.Fatal(err)
	}
	pool.Add2D(base)
	pool.Add2D(over)

	preds := []engine.Pred{join, engine.Filter(a["o.price"], 0, 500)}
	got := pool.Candidates2D(preds, a["o.id"], a["o.price"], engine.NewPredSet(0))
	if len(got) != 1 || got[0] != over {
		t.Fatalf("maximality failed: %d candidates", len(got))
	}
	// Without the join in the conditioning set, only the base qualifies.
	got = pool.Candidates2D(preds, a["o.id"], a["o.price"], engine.NewPredSet(1))
	if len(got) != 1 || got[0] != base {
		t.Fatalf("base candidate expected, got %d", len(got))
	}
}

func TestMaxJoinsCarries2D(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(65)), 100)
	b := NewBuilder(cat)
	pool := NewPool(cat)
	join := engine.Join(a["l.oid"], a["o.id"])
	base, _ := b.Build2D(a["o.id"], a["o.price"], nil)
	over, _ := b.Build2D(a["o.id"], a["o.price"], []engine.Pred{join})
	pool.Add2D(base)
	pool.Add2D(over)

	j0 := pool.MaxJoins(0)
	if j0.Size2D() != 1 {
		t.Fatalf("J0 should carry only the base 2-D SIT, got %d", j0.Size2D())
	}
	j1 := pool.MaxJoins(1)
	if j1.Size2D() != 2 {
		t.Fatalf("J1 should carry both 2-D SITs, got %d", j1.Size2D())
	}
}

func TestBuild2DBaseSITs(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(66)), 150)
	b := NewBuilder(cat)
	pool := NewPool(cat)
	q := engine.NewQuery(cat, []engine.Pred{
		engine.Join(a["l.oid"], a["o.id"]),
		engine.Filter(a["o.price"], 0, 500),
		engine.Filter(a["l.qty"], 0, 10),
	})
	added, err := Build2DBaseSITs(b, pool, []*engine.Query{q})
	if err != nil {
		t.Fatal(err)
	}
	// Join columns: l.oid, o.id. Filter attrs: o.price (orders), l.qty
	// (lineitem) → pairs (o.id, o.price) and (l.oid, l.qty).
	if added != 2 || pool.Size2D() != 2 {
		t.Fatalf("added %d 2-D SITs (size %d), want 2", added, pool.Size2D())
	}
	// Idempotent.
	again, err := Build2DBaseSITs(b, pool, []*engine.Query{q})
	if err != nil || again != 0 {
		t.Fatalf("re-adding created %d SITs, err %v", again, err)
	}
}
