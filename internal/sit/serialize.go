package sit

import (
	"encoding/json"
	"fmt"
	"io"

	"condsel/internal/engine"
	"condsel/internal/histogram"
)

// Serialization persists statistics pools as JSON so they can be built once
// and reused across processes. Attributes are stored by qualified name, so
// a snapshot loads into any catalog with the same schema.

const snapshotVersion = 1

type poolSnapshot struct {
	Version int             `json:"version"`
	SITs    []sitSnapshot   `json:"sits"`
	SITs2D  []sit2DSnapshot `json:"sits2d,omitempty"`
}

type sit2DSnapshot struct {
	X    string         `json:"x"`
	Y    string         `json:"y"`
	Expr []predSnapshot `json:"expr,omitempty"`
	Hist hist2DSnapshot `json:"hist"`
}

type hist2DSnapshot struct {
	XBounds   []int64     `json:"xBounds"`
	YBounds   []int64     `json:"yBounds"`
	Cells     [][]float64 `json:"cells"`
	XDistinct []float64   `json:"xDistinct"`
	Rows      float64     `json:"rows"`
	TotalRows float64     `json:"totalRows,omitempty"`
}

type sitSnapshot struct {
	Attr string         `json:"attr"`
	Expr []predSnapshot `json:"expr,omitempty"`
	Diff float64        `json:"diff"`
	Hist histSnapshot   `json:"hist"`
}

type predSnapshot struct {
	Join  bool   `json:"join,omitempty"`
	Attr  string `json:"attr,omitempty"`
	Left  string `json:"left,omitempty"`
	Right string `json:"right,omitempty"`
	Lo    int64  `json:"lo,omitempty"`
	Hi    int64  `json:"hi,omitempty"`
}

type histSnapshot struct {
	Rows      float64            `json:"rows"`
	TotalRows float64            `json:"totalRows,omitempty"`
	Buckets   []histogram.Bucket `json:"buckets"`
}

// Encode serializes the pool as JSON.
func (p *Pool) Encode(w io.Writer) error {
	snap := poolSnapshot{Version: snapshotVersion}
	for _, s := range p.SITs() {
		if s.Hist == nil {
			return fmt.Errorf("sit: cannot serialize SIT %s without histogram", s.Name(p.Cat))
		}
		ss := sitSnapshot{
			Attr: p.Cat.AttrName(s.Attr),
			Diff: s.Diff,
			Hist: histSnapshot{
				Rows:      s.Hist.Rows,
				TotalRows: s.Hist.TotalRows,
				Buckets:   s.Hist.Buckets,
			},
		}
		for _, pr := range s.Expr {
			ss.Expr = append(ss.Expr, snapshotPred(p.Cat, pr))
		}
		snap.SITs = append(snap.SITs, ss)
	}
	for _, s := range p.SITs2D() {
		if s.Hist == nil {
			return fmt.Errorf("sit: cannot serialize 2-D SIT %s without histogram", s.Name(p.Cat))
		}
		ss := sit2DSnapshot{
			X: p.Cat.AttrName(s.X),
			Y: p.Cat.AttrName(s.Y),
			Hist: hist2DSnapshot{
				XBounds:   s.Hist.XBounds,
				YBounds:   s.Hist.YBounds,
				Cells:     s.Hist.Cells,
				XDistinct: s.Hist.XDistinct,
				Rows:      s.Hist.Rows,
				TotalRows: s.Hist.TotalRows,
			},
		}
		for _, pr := range s.Expr {
			ss.Expr = append(ss.Expr, snapshotPred(p.Cat, pr))
		}
		snap.SITs2D = append(snap.SITs2D, ss)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}

// ReadPool deserializes a pool against the catalog. Attribute names must
// resolve in the catalog; histograms are taken as-is.
func ReadPool(cat *engine.Catalog, r io.Reader) (*Pool, error) {
	var snap poolSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("sit: decoding pool: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("sit: unsupported pool snapshot version %d", snap.Version)
	}
	pool := NewPool(cat)
	for i, ss := range snap.SITs {
		attr, err := cat.Attr(ss.Attr)
		if err != nil {
			return nil, fmt.Errorf("sit: snapshot entry %d: %w", i, err)
		}
		var expr []engine.Pred
		for _, ps := range ss.Expr {
			pr, err := restorePred(cat, ps)
			if err != nil {
				return nil, fmt.Errorf("sit: snapshot entry %d: %w", i, err)
			}
			expr = append(expr, pr)
		}
		h := &histogram.Histogram{
			Rows:      ss.Hist.Rows,
			TotalRows: ss.Hist.TotalRows,
			Buckets:   ss.Hist.Buckets,
		}
		pool.Add(NewSIT(cat, attr, expr, h, ss.Diff))
	}
	for i, ss := range snap.SITs2D {
		x, err := cat.Attr(ss.X)
		if err != nil {
			return nil, fmt.Errorf("sit: 2-D snapshot entry %d: %w", i, err)
		}
		y, err := cat.Attr(ss.Y)
		if err != nil {
			return nil, fmt.Errorf("sit: 2-D snapshot entry %d: %w", i, err)
		}
		var expr []engine.Pred
		for _, ps := range ss.Expr {
			pr, err := restorePred(cat, ps)
			if err != nil {
				return nil, fmt.Errorf("sit: 2-D snapshot entry %d: %w", i, err)
			}
			expr = append(expr, pr)
		}
		h := &histogram.Hist2D{
			XBounds:   ss.Hist.XBounds,
			YBounds:   ss.Hist.YBounds,
			Cells:     ss.Hist.Cells,
			XDistinct: ss.Hist.XDistinct,
			Rows:      ss.Hist.Rows,
			TotalRows: ss.Hist.TotalRows,
		}
		pool.Add2D(NewSIT2D(cat, x, y, expr, h))
	}
	return pool, nil
}

func snapshotPred(cat *engine.Catalog, p engine.Pred) predSnapshot {
	if p.IsJoin() {
		return predSnapshot{
			Join:  true,
			Left:  cat.AttrName(p.Left),
			Right: cat.AttrName(p.Right),
		}
	}
	return predSnapshot{Attr: cat.AttrName(p.Attr), Lo: p.Lo, Hi: p.Hi}
}

func restorePred(cat *engine.Catalog, ps predSnapshot) (engine.Pred, error) {
	if ps.Join {
		l, err := cat.Attr(ps.Left)
		if err != nil {
			return engine.Pred{}, err
		}
		r, err := cat.Attr(ps.Right)
		if err != nil {
			return engine.Pred{}, err
		}
		return engine.Join(l, r), nil
	}
	a, err := cat.Attr(ps.Attr)
	if err != nil {
		return engine.Pred{}, err
	}
	return engine.Filter(a, ps.Lo, ps.Hi), nil
}
