package sit

import "sort"

// Epoch support for the statistics lifecycle manager (internal/lifecycle):
// a rebuilt SIT is never patched into a live pool — readers may hold the
// pool mid-estimate — but published by deriving a complete replacement pool
// ("epoch") that shares every untouched statistic and carries a fresh
// generation. In-flight runs finish against the old epoch; new runs pick up
// the new one; generation-keyed caches (internal/selcache) can never mix the
// two because no two pools ever share a generation stamp.

// Lookup returns the pool's SIT with the given canonical ID, quarantined or
// not, or nil when the ID is unknown. Lifecycle rebuilds use it to recover
// the attribute/expression spec of a statistic that has been pulled from
// service.
func (p *Pool) Lookup(id string) *SIT { return p.byID[id] }

// Rebuilt returns a new pool — a fresh epoch — with the same contents as p
// except that the statistic with s.ID() is replaced by s. Quarantine state
// and deep-validation marks carry over for every other statistic; the
// replaced ID starts clean (not quarantined, not yet deep-checked), so a
// rebuild heals a quarantined statistic by construction. The receiver is not
// modified and stays fully usable: the two pools share SIT values but no
// mutable state, and the clone's generation (like every pool's) is globally
// unique, so generation-keyed cache entries never alias across epochs. The
// clone's match-call counter starts at zero.
//
// Rebuilt must not race with mutations of p (Add, Add2D); concurrent readers
// are fine, as for every other pool read.
func (p *Pool) Rebuilt(s *SIT) *Pool {
	id := s.ID()
	out := NewPool(p.Cat)

	// Carry every 1-D statistic except the one being replaced, in canonical
	// ID order (Add appends to byAttr slices; deterministic order keeps the
	// clone's pre-index layout reproducible).
	for _, old := range p.allSITs() {
		if old.ID() == id {
			continue
		}
		out.byID[old.ID()] = old
		out.byAttr[old.Attr] = append(out.byAttr[old.Attr], old)
	}
	// Quarantine records and deep-validation marks transfer for every other
	// ID, so statistics quarantined by a lazy deep check stay out of service
	// in the new epoch and already-checked histograms are not re-validated.
	// Both loops are pure map-to-map copies (order-free); the replaced ID is
	// scrubbed afterwards so the healed statistic starts clean. This happens
	// before the rebuilt statistic registers, so a quarantine issued by Add
	// (structurally invalid rebuild) survives.
	p.qmu.Lock()
	for qid, rec := range p.quar {
		out.quar[qid] = rec
	}
	for cid, done := range p.checked {
		out.checked[cid] = done
	}
	p.qmu.Unlock()
	delete(out.quar, id)
	delete(out.checked, id)

	// Install the rebuilt statistic through the regular registration path so
	// a structurally invalid rebuild is quarantined, not served.
	out.Add(s)

	// Two-dimensional statistics are carried as-is (the lifecycle manager
	// rebuilds 1-D SITs; 2-D support would extend this symmetrically).
	for _, s2 := range p.SITs2D() {
		out.Add2D(s2)
	}

	out.gen.Store(poolGen.Add(1))
	return out
}

// allSITs returns every 1-D SIT — quarantined included — in canonical ID
// order. Internal: epoch clones must carry quarantined statistics (their
// specs are what rebuilds are made from) that the public SITs() hides.
func (p *Pool) allSITs() []*SIT {
	out := make([]*SIT, 0, len(p.byID))
	for _, s := range p.byID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}
