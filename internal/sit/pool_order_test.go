package sit

import (
	"math/rand"
	"testing"

	"condsel/internal/engine"
	"condsel/internal/histogram"
)

// TestPoolIndexInsertionOrderIndependence backs the detmaprange suppression
// on poolIndex construction (Pool.index ranges over the byAttr map): every
// read surface of the index — OnAttr, SITs, Candidates — must return
// byte-identical sequences no matter in which order the same SITs were
// added, i.e. no matter which map iteration order built the index.
func TestPoolIndexInsertionOrderIndependence(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(7)), 60)
	join := engine.Join(a["l.oid"], a["o.id"])
	preds := []engine.Pred{engine.Filter(a["o.price"], 0, 500), join}

	mkSITs := func() []*SIT {
		return []*SIT{
			NewSIT(cat, a["o.price"], nil, &histogram.Histogram{}, 0),
			NewSIT(cat, a["o.price"], []engine.Pred{join}, &histogram.Histogram{}, 0.4),
			NewSIT(cat, a["l.qty"], nil, &histogram.Histogram{}, 0),
			NewSIT(cat, a["l.qty"], []engine.Pred{join}, &histogram.Histogram{}, 0.2),
			NewSIT(cat, a["o.id"], nil, &histogram.Histogram{}, 0),
		}
	}

	forward := NewPool(cat)
	for _, s := range mkSITs() {
		forward.Add(s)
	}
	backward := NewPool(cat)
	sits := mkSITs()
	for i := len(sits) - 1; i >= 0; i-- {
		backward.Add(sits[i])
	}

	sameIDs := func(name string, x, y []*SIT) {
		t.Helper()
		if len(x) != len(y) {
			t.Fatalf("%s: %d vs %d SITs", name, len(x), len(y))
		}
		for i := range x {
			if x[i].ID() != y[i].ID() {
				t.Fatalf("%s[%d]: %q vs %q", name, i, x[i].ID(), y[i].ID())
			}
		}
	}

	sameIDs("SITs", forward.SITs(), backward.SITs())
	for name, attr := range a {
		sameIDs("OnAttr("+name+")", forward.OnAttr(attr), backward.OnAttr(attr))
		full := engine.FullPredSet(len(preds))
		sameIDs("Candidates("+name+")",
			forward.Candidates(preds, attr, full),
			backward.Candidates(preds, attr, full))
	}
}
