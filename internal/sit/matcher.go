package sit

import (
	"math/bits"

	"condsel/internal/engine"
)

// Matcher resolves §3.3 candidate lookups for one query (one predicate
// slice) against a pool. It is the hot-path front end to Pool.Candidates:
// per attribute it translates every SIT's expression into a bitmask over the
// query's predicate positions once, so a lookup is a popcount per SIT
// instead of a string-keyed containment scan, and it caches the resulting
// candidate slice per (attribute, conditioning set) — the getSelectivity DP
// requests the same few conditioning components over and over across the
// exponentially many subsets it visits.
//
// Results are exactly Pool.Candidates' (same SITs, same order), and every
// lookup — cached or not — counts as one view-matching call on the pool, so
// the Figure 6 accounting keeps its meaning: the number of candidate
// requests the algorithm issues, not the number of scans performed.
//
// The Matcher snapshots the pool's generation at creation; like a Run it is
// single-goroutine state and must not outlive pool mutations. Returned
// slices are shared with the cache: callers must not modify them.
type Matcher struct {
	pool  *Pool
	preds []engine.Pred
	attrs map[engine.AttrID]*attrMatcher
	cache map[matchKey][]*SIT
}

type matchKey struct {
	attr engine.AttrID
	cond engine.PredSet
}

// attrMatcher is the per-attribute projection of the pool index onto one
// query's predicate positions.
type attrMatcher struct {
	idx *attrIndex

	// keyed[k]: positions of the query's predicates whose canonical key
	// belongs to sits[k]'s expression. sizes[k] is the expression's distinct
	// key count, so sits[k] matches a conditioning set q exactly when
	// |q ∩ keyed[k]| == sizes[k] — the same count MatchesSubset performs.
	keyed   []engine.PredSet
	sizes   []int
	scratch []bool // matched flags, reused across lookups
}

// NewMatcher returns a matcher for the query's predicate slice over the
// pool's current contents. Attribute projections are built lazily on first
// lookup, so queries touching few attributes pay only for those.
func NewMatcher(p *Pool, preds []engine.Pred) *Matcher {
	return &Matcher{
		pool:  p,
		preds: preds,
		attrs: make(map[engine.AttrID]*attrMatcher),
		cache: make(map[matchKey][]*SIT),
	}
}

// forAttr returns (building on first use) the attribute's projection.
func (m *Matcher) forAttr(attr engine.AttrID) *attrMatcher {
	if am, ok := m.attrs[attr]; ok {
		return am
	}
	var am *attrMatcher
	if idx := m.pool.index().byAttr[attr]; idx != nil {
		am = &attrMatcher{
			idx:     idx,
			keyed:   make([]engine.PredSet, len(idx.sits)),
			sizes:   make([]int, len(idx.sits)),
			scratch: make([]bool, len(idx.sits)),
		}
		for k, s := range idx.sits {
			am.sizes[k] = len(s.exprSet)
			for i, p := range m.preds {
				// Canonical-value membership: equivalent to the string-keyed
				// s.exprKeys[p.Key()] test without formatting a key.
				if s.exprSet[p.Canon()] {
					am.keyed[k] = am.keyed[k].Add(i)
				}
			}
		}
	}
	m.attrs[attr] = am
	return am
}

// Candidates returns the pool's candidate SITs for approximating a factor
// over attr conditioned on cond — bit-identical to
// Pool.Candidates(preds, attr, cond) — serving repeats from the per-run
// cache. The returned slice is shared; callers must not modify it.
func (m *Matcher) Candidates(attr engine.AttrID, cond engine.PredSet) []*SIT {
	m.pool.matchCalls.Add(1)
	key := matchKey{attr, cond}
	if out, ok := m.cache[key]; ok {
		return out
	}
	var out []*SIT
	if am := m.forAttr(attr); am != nil {
		for k := range am.idx.sits {
			am.scratch[k] = bits.OnesCount64(uint64(cond&am.keyed[k])) == am.sizes[k]
		}
		out = am.idx.maximal(am.scratch)
	}
	m.cache[key] = out
	return out
}
