package sit

import (
	"sort"
	"sync"

	"condsel/internal/engine"
)

// BuildWorkloadPoolParallel builds the same pool as BuildWorkloadPool using
// the given number of worker goroutines, one join-expression group per
// task. Each worker owns a private Builder (and therefore evaluator), so
// workers share only the read-only catalog; the resulting pool is
// element-wise identical to the sequential build. configure, when non-nil,
// is applied to every worker's Builder (set Buckets, Kind, ExactDiff).
func BuildWorkloadPoolParallel(cat *engine.Catalog, queries []*engine.Query, maxJoins, workers int, configure func(*Builder)) *Pool {
	if workers <= 1 {
		b := NewBuilder(cat)
		if configure != nil {
			configure(b)
		}
		return BuildWorkloadPool(b, queries, maxJoins)
	}
	specs := WorkloadSpecs(cat, queries, maxJoins)

	type group struct {
		expr  []engine.Pred
		attrs []engine.AttrID
	}
	byExpr := make(map[string]*group)
	var keys []string
	for _, spec := range specs {
		key := engine.PredsKey(spec.Expr, engine.FullPredSet(len(spec.Expr)))
		g, ok := byExpr[key]
		if !ok {
			g = &group{expr: spec.Expr}
			byExpr[key] = g
			keys = append(keys, key)
		}
		g.attrs = append(g.attrs, spec.Attr)
	}
	// Largest expressions first: they dominate build time, so scheduling
	// them early balances the workers.
	sort.Slice(keys, func(i, j int) bool {
		a, b := byExpr[keys[i]], byExpr[keys[j]]
		if len(a.expr) != len(b.expr) {
			return len(a.expr) > len(b.expr)
		}
		return keys[i] < keys[j]
	})

	jobs := make(chan *group)
	var mu sync.Mutex
	pool := NewPool(cat)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := NewBuilder(cat)
			if configure != nil {
				configure(b)
			}
			for g := range jobs {
				sits := b.BuildGroup(g.expr, g.attrs)
				mu.Lock()
				for _, s := range sits {
					pool.Add(s)
				}
				mu.Unlock()
			}
		}()
	}
	for _, key := range keys {
		jobs <- byExpr[key]
	}
	close(jobs)
	wg.Wait()
	return pool
}
