package sit

import (
	"math/rand"
	"testing"

	"condsel/internal/engine"
)

func TestParallelPoolMatchesSequential(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(70)), 300)
	q1 := engine.NewQuery(cat, []engine.Pred{
		engine.Join(a["l.oid"], a["o.id"]),
		engine.Filter(a["o.price"], 0, 500),
	})
	q2 := engine.NewQuery(cat, []engine.Pred{
		engine.Join(a["l.oid"], a["o.id"]),
		engine.Filter(a["l.qty"], 0, 25),
	})
	queries := []*engine.Query{q1, q2}

	seq := BuildWorkloadPool(NewBuilder(cat), queries, 1)
	par := BuildWorkloadPoolParallel(cat, queries, 1, 4, nil)

	if par.Size() != seq.Size() {
		t.Fatalf("parallel size %d, sequential %d", par.Size(), seq.Size())
	}
	ss, ps := seq.SITs(), par.SITs()
	for i := range ss {
		if ss[i].ID() != ps[i].ID() {
			t.Fatalf("SIT %d identity differs: %q vs %q", i, ss[i].ID(), ps[i].ID())
		}
		if ss[i].Diff != ps[i].Diff {
			t.Fatalf("SIT %d diff differs: %v vs %v", i, ss[i].Diff, ps[i].Diff)
		}
		for _, probe := range [][2]int64{{0, 100}, {100, 900}} {
			a := ss[i].Hist.EstimateRange(probe[0], probe[1])
			b := ps[i].Hist.EstimateRange(probe[0], probe[1])
			if a != b {
				t.Fatalf("SIT %d estimates differ on [%d,%d]: %v vs %v",
					i, probe[0], probe[1], a, b)
			}
		}
	}
}

func TestParallelPoolSingleWorkerDelegates(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(71)), 100)
	q := engine.NewQuery(cat, []engine.Pred{
		engine.Join(a["l.oid"], a["o.id"]),
		engine.Filter(a["o.price"], 0, 500),
	})
	configured := false
	pool := BuildWorkloadPoolParallel(cat, []*engine.Query{q}, 1, 1, func(b *Builder) {
		configured = true
		b.Buckets = 20
	})
	if !configured {
		t.Fatalf("configure not applied on single-worker path")
	}
	if pool.Size() == 0 {
		t.Fatalf("empty pool")
	}
}

func TestParallelPoolConfigure(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(72)), 200)
	q := engine.NewQuery(cat, []engine.Pred{
		engine.Join(a["l.oid"], a["o.id"]),
		engine.Filter(a["o.price"], 0, 500),
	})
	pool := BuildWorkloadPoolParallel(cat, []*engine.Query{q}, 1, 3, func(b *Builder) {
		b.Buckets = 8
	})
	for _, s := range pool.SITs() {
		if s.Hist.NumBuckets() > 8 {
			t.Fatalf("configure ignored: %d buckets", s.Hist.NumBuckets())
		}
	}
}
