package sit

import (
	"condsel/internal/engine"
	"condsel/internal/histogram"
)

// DefaultBuckets is the per-histogram bucket budget used in the paper's
// experiments.
const DefaultBuckets = 200

// Builder constructs SITs by executing query expressions on the evaluator
// and histogramming the projected attribute. Each built SIT carries its
// diff value (§3.5), computed against the base-table histogram of the same
// attribute.
type Builder struct {
	Cat *engine.Catalog
	Ev  *engine.Evaluator

	// Buckets is the bucket budget per histogram (DefaultBuckets if 0).
	Buckets int
	// Kind selects the histogram class (maxDiff if zero value).
	Kind histogram.Kind
	// ExactDiff computes diff from the raw value multisets rather than from
	// the two histograms. The paper uses the histogram approximation; the
	// exact variant exists for the ablation study.
	ExactDiff bool

	baseHists map[engine.AttrID]*histogram.Histogram
	baseVals  map[engine.AttrID][]int64
}

// NewBuilder returns a Builder over the catalog with a fresh evaluator.
func NewBuilder(cat *engine.Catalog) *Builder {
	return &Builder{Cat: cat, Ev: engine.NewEvaluator(cat)}
}

func (b *Builder) buckets() int {
	if b.Buckets <= 0 {
		return DefaultBuckets
	}
	return b.Buckets
}

// baseHist returns (and caches) the base-table histogram of attr.
func (b *Builder) baseHist(attr engine.AttrID) *histogram.Histogram {
	if b.baseHists == nil {
		b.baseHists = make(map[engine.AttrID]*histogram.Histogram)
	}
	if h, ok := b.baseHists[attr]; ok {
		return h
	}
	h := histogram.Build(b.Kind, b.baseValues(attr), b.buckets())
	// Normalize selectivities by the full table size: NULLs satisfy neither
	// filters nor joins but still count towards |R|.
	h.TotalRows = float64(b.Cat.TableRows(b.Cat.AttrTable(attr)))
	b.baseHists[attr] = h
	return h
}

// baseValues returns (and caches) the non-NULL base column values of attr.
func (b *Builder) baseValues(attr engine.AttrID) []int64 {
	if b.baseVals == nil {
		b.baseVals = make(map[engine.AttrID][]int64)
	}
	if v, ok := b.baseVals[attr]; ok {
		return v
	}
	v := b.Ev.AttrValues(attr, nil, 0)
	b.baseVals[attr] = v
	return v
}

// BuildBase returns the base-table SIT (ordinary histogram) for attr.
func (b *Builder) BuildBase(attr engine.AttrID) *SIT {
	return NewSIT(b.Cat, attr, nil, b.baseHist(attr), 0)
}

// Build constructs SIT(attr | expr) by executing the expression. The
// expression must be a connected set of predicates whose tables include
// attr's table; an empty expr yields the base histogram.
func (b *Builder) Build(attr engine.AttrID, expr []engine.Pred) *SIT {
	if len(expr) == 0 {
		return b.BuildBase(attr)
	}
	view := b.Ev.Materialize(expr, engine.FullPredSet(len(expr)))
	return b.buildFromView(view, attr, expr)
}

// BuildGroup constructs SITs for several attributes over one shared
// expression, materializing the expression's join result only once.
func (b *Builder) BuildGroup(expr []engine.Pred, attrs []engine.AttrID) []*SIT {
	if len(attrs) == 0 {
		return nil
	}
	if len(expr) == 0 {
		out := make([]*SIT, len(attrs))
		for i, a := range attrs {
			out[i] = b.BuildBase(a)
		}
		return out
	}
	view := b.Ev.Materialize(expr, engine.FullPredSet(len(expr)))
	out := make([]*SIT, len(attrs))
	for i, a := range attrs {
		out[i] = b.buildFromView(view, a, expr)
	}
	return out
}

func (b *Builder) buildFromView(view *engine.View, attr engine.AttrID, expr []engine.Pred) *SIT {
	vals := view.AttrValues(attr)
	h := histogram.Build(b.Kind, vals, b.buckets())
	h.TotalRows = float64(view.Count())
	var diff float64
	if b.ExactDiff {
		diff = histogram.DiffExact(b.baseValues(attr), vals)
	} else {
		diff = histogram.Diff(b.baseHist(attr), h)
	}
	return NewSIT(b.Cat, attr, expr, h, diff)
}
