package sit

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"condsel/internal/engine"
	"condsel/internal/faults"
	"condsel/internal/histogram"
)

// validHist returns a small well-formed histogram.
func validHist() *histogram.Histogram {
	return &histogram.Histogram{
		Rows:    10,
		Buckets: []histogram.Bucket{{Lo: 0, Hi: 9, Count: 10, Distinct: 10}},
	}
}

// rottenHist returns a histogram that passes the cheap registration check
// (finite header) but fails the deep bucket validation (inverted range).
func rottenHist() *histogram.Histogram {
	return &histogram.Histogram{
		Rows:    10,
		Buckets: []histogram.Bucket{{Lo: 9, Hi: 0, Count: 10, Distinct: 3}},
	}
}

// TestAddRejectsNonFiniteHeader: registration-time validation refuses a SIT
// whose histogram header is structurally broken, and Health records why.
func TestAddRejectsNonFiniteHeader(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(3)), 40)
	p := NewPool(cat)
	bad := NewSIT(cat, a["o.price"], nil, &histogram.Histogram{Rows: math.NaN()}, 0)
	if p.Add(bad) {
		t.Fatal("Add accepted a NaN-rows histogram")
	}
	if p.Size() != 0 {
		t.Fatalf("pool size = %d after rejected Add", p.Size())
	}
	h := p.HealthSnapshot()
	if h.Quarantined != 1 || len(h.Records) != 1 {
		t.Fatalf("health = %+v, want 1 quarantined record", h)
	}
	if !strings.Contains(h.Records[0].Reason, "rows") {
		t.Fatalf("reason %q does not mention rows", h.Records[0].Reason)
	}
}

// TestLazyValidationQuarantinesOnFirstUse: a SIT whose corruption only shows
// in its buckets is admitted at Add time but quarantined the first time the
// candidate index touches it — and every read surface then excludes it.
func TestLazyValidationQuarantinesOnFirstUse(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(4)), 40)
	join := engine.Join(a["l.oid"], a["o.id"])
	p := NewPool(cat)
	good := NewSIT(cat, a["o.price"], nil, validHist(), 0)
	rotten := NewSIT(cat, a["o.price"], []engine.Pred{join}, rottenHist(), 0.4)
	if !p.Add(good) || !p.Add(rotten) {
		t.Fatal("Add rejected a SIT that passes the registration check")
	}
	genBefore := p.Generation()

	preds := []engine.Pred{engine.Filter(a["o.price"], 0, 500), join}
	cands := p.Candidates(preds, a["o.price"], engine.FullPredSet(len(preds)))
	for _, s := range cands {
		if s.ID() == rotten.ID() {
			t.Fatal("candidate lookup returned a corrupt SIT")
		}
	}
	if p.Generation() == genBefore {
		t.Fatal("quarantine did not bump the pool generation")
	}
	h := p.HealthSnapshot()
	if h.Quarantined != 1 || h.SITs != 1 {
		t.Fatalf("health = %+v, want 1 healthy + 1 quarantined", h)
	}
	if h.Records[0].ID != rotten.ID() {
		t.Fatalf("quarantined %q, want %q", h.Records[0].ID, rotten.ID())
	}
	for _, s := range p.SITs() {
		if s.ID() == rotten.ID() {
			t.Fatal("SITs still lists the quarantined SIT")
		}
	}
	for _, s := range p.OnAttr(a["o.price"]) {
		if s.ID() == rotten.ID() {
			t.Fatal("OnAttr still lists the quarantined SIT")
		}
	}
}

// TestBaseSkipsQuarantinedHistogram: a corrupt base histogram is not served
// by Base after quarantine.
func TestBaseSkipsQuarantinedHistogram(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(5)), 40)
	p := NewPool(cat)
	p.Add(NewSIT(cat, a["o.price"], nil, rottenHist(), 0))
	if s := p.Base(a["o.price"]); s != nil {
		t.Fatalf("Base returned quarantined SIT %q", s.ID())
	}
}

// TestManualQuarantine: operators can pull a healthy statistic by ID; the
// call is idempotent and unknown IDs are rejected.
func TestManualQuarantine(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(6)), 40)
	p := NewPool(cat)
	s := NewSIT(cat, a["l.qty"], nil, validHist(), 0)
	p.Add(s)
	if p.Quarantine("no-such-id", "stale") {
		t.Fatal("Quarantine accepted an unknown ID")
	}
	if !p.Quarantine(s.ID(), "suspected stale") {
		t.Fatal("Quarantine rejected a pool SIT")
	}
	if p.Quarantine(s.ID(), "again") {
		t.Fatal("Quarantine re-quarantined an already quarantined SIT")
	}
	if got := len(p.SITs()); got != 0 {
		t.Fatalf("SITs lists %d entries after quarantine", got)
	}
	h := p.HealthSnapshot()
	if h.Quarantined != 1 || h.Records[0].Reason != "suspected stale" {
		t.Fatalf("health = %+v", h)
	}
}

// TestCorruptBucketFaultQuarantines: the fault-injection harness can rot a
// statistic that would otherwise validate, exercising the same quarantine
// path as genuine corruption. Not parallel: arming is process-global.
func TestCorruptBucketFaultQuarantines(t *testing.T) {
	defer faults.Disarm()
	cat, a := shopDB(rand.New(rand.NewSource(7)), 40)
	p := NewPool(cat)
	good := NewSIT(cat, a["o.price"], nil, validHist(), 0)
	p.Add(good)

	faults.Arm(faults.NewSchedule(1).Set(faults.CorruptBucket, faults.Rule{Limit: 1}))
	if s := p.Base(a["o.price"]); s != nil {
		t.Fatalf("Base served a fault-corrupted SIT %q", s.ID())
	}
	faults.Disarm()

	h := p.HealthSnapshot()
	if h.Quarantined != 1 {
		t.Fatalf("health = %+v, want the fault-corrupted SIT quarantined", h)
	}
	if !strings.Contains(h.Records[0].Reason, "fault injection") {
		t.Fatalf("reason %q does not identify the injected fault", h.Records[0].Reason)
	}
}

// TestFilterDropsQuarantined: derived sub-pools are built from the healthy
// SITs only.
func TestFilterDropsQuarantined(t *testing.T) {
	t.Parallel()
	cat, a := shopDB(rand.New(rand.NewSource(8)), 40)
	p := NewPool(cat)
	p.Add(NewSIT(cat, a["o.price"], nil, validHist(), 0))
	p.Add(NewSIT(cat, a["l.qty"], nil, rottenHist(), 0))
	p.OnAttr(a["l.qty"]) // trigger lazy validation
	sub := p.Filter(func(*SIT) bool { return true })
	if got := sub.Size(); got != 1 {
		t.Fatalf("filtered pool has %d SITs, want 1 (quarantined dropped)", got)
	}
}
