package sit

import (
	"fmt"
	"sort"
	"strings"

	"condsel/internal/engine"
	"condsel/internal/histogram"
)

// SIT2D is a two-dimensional statistic on a query expression: a joint
// histogram over (X, Y) built on the result of σ_Expr, where X is typically
// a join column and Y a dependent filter attribute (both on the same
// table). §3.3 Example 3 uses exactly this shape — SIT(R.x, R.a|Q) — to
// derive SIT(R.a | R.x=·, Q) through a histogram join. An empty Expr is a
// plain two-dimensional base histogram.
type SIT2D struct {
	X, Y   engine.AttrID
	Expr   []engine.Pred
	Tables engine.TableSet
	Hist   *histogram.Hist2D

	exprKeys map[string]bool
}

// NewSIT2D assembles a 2-D SIT, deriving table set and expression keys.
func NewSIT2D(c *engine.Catalog, x, y engine.AttrID, expr []engine.Pred, h *histogram.Hist2D) *SIT2D {
	s := &SIT2D{X: x, Y: y, Expr: expr, Hist: h,
		exprKeys: make(map[string]bool, len(expr))}
	s.Tables = engine.NewTableSet(c.AttrTable(x), c.AttrTable(y))
	for _, p := range expr {
		s.Tables = s.Tables.Union(p.Tables(c))
		s.exprKeys[p.Key()] = true
	}
	return s
}

// ExprSize returns the number of predicates in the generating expression.
func (s *SIT2D) ExprSize() int { return len(s.Expr) }

// ID returns a canonical identity for deduplication.
func (s *SIT2D) ID() string {
	keys := make([]string, 0, len(s.exprKeys))
	for k := range s.exprKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("2d:%d,%d|%s", s.X, s.Y, strings.Join(keys, "&"))
}

// Name renders the SIT in the paper's notation, e.g. "SIT(R.x, R.a | …)".
func (s *SIT2D) Name(c *engine.Catalog) string {
	if len(s.Expr) == 0 {
		return fmt.Sprintf("H(%s, %s)", c.AttrName(s.X), c.AttrName(s.Y))
	}
	parts := make([]string, len(s.Expr))
	for i, p := range s.Expr {
		parts[i] = p.Format(c)
	}
	return fmt.Sprintf("SIT(%s, %s | %s)", c.AttrName(s.X), c.AttrName(s.Y),
		strings.Join(parts, " & "))
}

// MatchesSubset reports whether the SIT's expression is contained in the
// predicate subset q (structural identity).
func (s *SIT2D) MatchesSubset(preds []engine.Pred, q engine.PredSet) bool {
	if len(s.exprKeys) > q.Len() {
		return false
	}
	found := 0
	for _, i := range q.Indices() {
		if s.exprKeys[preds[i].Key()] {
			found++
		}
	}
	return found == len(s.exprKeys)
}

// MatchedSet returns the positions within q covered by the expression.
func (s *SIT2D) MatchedSet(preds []engine.Pred, q engine.PredSet) engine.PredSet {
	var m engine.PredSet
	for _, i := range q.Indices() {
		if s.exprKeys[preds[i].Key()] {
			m = m.Add(i)
		}
	}
	return m
}

// Build2D constructs SIT2D(x, y | expr). Both attributes must be on the
// same table; the expression (possibly empty) must cover that table when
// non-empty.
func (b *Builder) Build2D(x, y engine.AttrID, expr []engine.Pred) (*SIT2D, error) {
	if b.Cat.AttrTable(x) != b.Cat.AttrTable(y) {
		return nil, fmt.Errorf("sit: 2-D SIT attributes must share a table, got %s and %s",
			b.Cat.AttrName(x), b.Cat.AttrName(y))
	}
	var xs, ys []int64
	var total float64
	if len(expr) == 0 {
		xCol, yCol := b.Cat.AttrColumn(x), b.Cat.AttrColumn(y)
		n := len(xCol.Vals)
		total = float64(n)
		for i := 0; i < n; i++ {
			if xCol.IsNull(i) || yCol.IsNull(i) {
				continue
			}
			xs = append(xs, xCol.Vals[i])
			ys = append(ys, yCol.Vals[i])
		}
	} else {
		view := b.Ev.Materialize(expr, engine.FullPredSet(len(expr)))
		total = float64(view.Count())
		xs, ys = view.AttrPairs(x, y)
	}
	xDim, yDim := gridDims(b.buckets())
	h, err := histogram.Build2D(xs, ys, xDim, yDim)
	if err != nil {
		return nil, err
	}
	h.TotalRows = total
	return NewSIT2D(b.Cat, x, y, expr, h), nil
}

// gridDims spreads a 1-D bucket budget over the two dimensions
// asymmetrically: the join column (x) gets ~√budget coarse stripes — join
// estimation aggregates whole stripes anyway — while the dependent filter
// attribute (y) keeps budget/2 stripes so derived conditional range
// estimates stay sharp.
func gridDims(buckets int) (xDim, yDim int) {
	xDim = 1
	for (xDim+1)*(xDim+1) <= buckets {
		xDim++
	}
	if xDim < 4 {
		xDim = 4
	}
	yDim = buckets / 2
	if yDim < xDim {
		yDim = xDim
	}
	return xDim, yDim
}

// Add2D inserts a 2-D SIT unless an identical one is present.
func (p *Pool) Add2D(s *SIT2D) bool {
	id := s.ID()
	if _, dup := p.byID2D[id]; dup {
		return false
	}
	if p.byID2D == nil {
		p.byID2D = make(map[string]*SIT2D)
		p.by2D = make(map[[2]engine.AttrID][]*SIT2D)
	}
	p.byID2D[id] = s
	key := [2]engine.AttrID{s.X, s.Y}
	p.by2D[key] = append(p.by2D[key], s)
	p.gen.Store(poolGen.Add(1))
	return true
}

// Size2D returns the number of 2-D SITs in the pool.
func (p *Pool) Size2D() int { return len(p.byID2D) }

// Candidates2D returns the 2-D SITs over (x, y) whose expressions are
// contained in q and maximal, mirroring Candidates. Each invocation counts
// as one view-matching call.
func (p *Pool) Candidates2D(preds []engine.Pred, x, y engine.AttrID, q engine.PredSet) []*SIT2D {
	p.matchCalls.Add(1)
	var matching []*SIT2D
	for _, s := range p.by2D[[2]engine.AttrID{x, y}] {
		if s.MatchesSubset(preds, q) {
			matching = append(matching, s)
		}
	}
	var out []*SIT2D
	for _, s := range matching {
		maximal := true
		for _, t := range matching {
			if t != s && t.ExprSize() > s.ExprSize() && exprSubset(s, t) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

func exprSubset(a, b *SIT2D) bool {
	for k := range a.exprKeys {
		if !b.exprKeys[k] {
			return false
		}
	}
	return true
}

// Build2DBaseSITs adds, for every workload query, the base 2-D histograms
// pairing each join column with each filter attribute of the same table —
// the statistics the Example 3 derivation consumes. Returns the number of
// SITs added.
func Build2DBaseSITs(b *Builder, pool *Pool, queries []*engine.Query) (int, error) {
	type pair struct{ x, y engine.AttrID }
	seen := make(map[pair]bool)
	added := 0
	for _, q := range queries {
		var joinAttrs, filterAttrs []engine.AttrID
		for _, p := range q.Preds {
			if p.IsJoin() {
				joinAttrs = append(joinAttrs, p.Left, p.Right)
			} else {
				filterAttrs = append(filterAttrs, p.Attr)
			}
		}
		for _, x := range joinAttrs {
			for _, y := range filterAttrs {
				if x == y || b.Cat.AttrTable(x) != b.Cat.AttrTable(y) {
					continue
				}
				key := pair{x, y}
				if seen[key] {
					continue
				}
				seen[key] = true
				s, err := b.Build2D(x, y, nil)
				if err != nil {
					return added, err
				}
				if pool.Add2D(s) {
					added++
				}
			}
		}
	}
	return added, nil
}
