// Package sit implements statistics on query expressions (SITs): histograms
// built over the result of executing a join expression, as introduced in
// Bruno & Chaudhuri (SIGMOD'02) and exploited by the conditional-selectivity
// framework of the reproduced paper. It provides the SIT type, a builder
// that executes expressions and derives the per-SIT diff value (§3.5), and
// pools with the candidate-matching rules of §3.3 (attribute coverage,
// expression containment, maximality).
package sit

import (
	"fmt"
	"sort"
	"strings"

	"condsel/internal/engine"
	"condsel/internal/histogram"
)

// SIT is a statistic on a query expression: a histogram over attribute Attr
// built on the result of σ_Expr(tables(Expr)^×). An empty Expr denotes an
// ordinary base-table histogram. Diff is the variation distance between the
// SIT's distribution and the base distribution of Attr, computed once at
// build time (§3.5); base histograms have Diff 0 by definition.
type SIT struct {
	Attr   engine.AttrID
	Expr   []engine.Pred // join predicates of the generating expression
	Tables engine.TableSet
	Hist   *histogram.Histogram
	Diff   float64

	exprKeys map[string]bool      // canonical predicate keys of Expr
	exprSet  map[engine.Pred]bool // canonical predicate values of Expr
	id       string               // canonical identity, precomputed (ID is hot)
}

// NewSIT assembles a SIT from its parts, deriving the table set and
// canonical expression keys. Expression membership is indexed twice: by
// Pred.Key() string for the legacy containment tests, and by canonical
// predicate value (Pred.Canon) so the matcher's per-query indexing never
// formats a key string — the two are equivalent, as equal keys and equal
// canonical forms coincide.
func NewSIT(c *engine.Catalog, attr engine.AttrID, expr []engine.Pred, h *histogram.Histogram, diff float64) *SIT {
	s := &SIT{Attr: attr, Expr: expr, Hist: h, Diff: diff,
		exprKeys: make(map[string]bool, len(expr)),
		exprSet:  make(map[engine.Pred]bool, len(expr))}
	s.Tables = engine.NewTableSet(c.AttrTable(attr))
	for _, p := range expr {
		s.Tables = s.Tables.Union(p.Tables(c))
		s.exprKeys[p.Key()] = true
		s.exprSet[p.Canon()] = true
	}
	keys := make([]string, 0, len(s.exprKeys))
	for k := range s.exprKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.id = fmt.Sprintf("%d|%s", s.Attr, strings.Join(keys, "&"))
	return s
}

// IsBase reports whether the SIT is a plain base-table histogram.
func (s *SIT) IsBase() bool { return len(s.Expr) == 0 }

// ExprSize returns the number of predicates in the generating expression.
func (s *SIT) ExprSize() int { return len(s.Expr) }

// ID returns a canonical identity string: attribute plus sorted expression
// keys. Two SITs with equal IDs are built over the same expression. The
// string is precomputed at construction — the cross-query histogram-join
// cache keys on it in the estimation hot path.
func (s *SIT) ID() string { return s.id }

// Name renders the SIT in the paper's notation, e.g.
// "SIT(orders.price | lineitem.oid = orders.id)".
func (s *SIT) Name(c *engine.Catalog) string {
	if s.IsBase() {
		return fmt.Sprintf("H(%s)", c.AttrName(s.Attr))
	}
	parts := make([]string, len(s.Expr))
	for i, p := range s.Expr {
		parts[i] = p.Format(c)
	}
	return fmt.Sprintf("SIT(%s | %s)", c.AttrName(s.Attr), strings.Join(parts, " & "))
}

// MatchesSubset reports whether every predicate of the SIT's expression
// appears (structurally) within the predicate subset q of preds. This is
// the `Q' ⊆ Q` containment test of §3.3.
func (s *SIT) MatchesSubset(preds []engine.Pred, q engine.PredSet) bool {
	if len(s.exprKeys) > q.Len() {
		return false
	}
	found := 0
	for _, i := range q.Indices() {
		if s.exprKeys[preds[i].Key()] {
			found++
		}
	}
	return found == len(s.exprKeys)
}

// ExprSubsetOf reports whether s's expression is a (possibly equal) subset
// of t's expression.
func (s *SIT) ExprSubsetOf(t *SIT) bool {
	if len(s.exprKeys) > len(t.exprKeys) {
		return false
	}
	for k := range s.exprKeys {
		if !t.exprKeys[k] {
			return false
		}
	}
	return true
}

// MatchedSet returns the positions within q whose predicates belong to the
// SIT's expression — the Q' actually covered by the SIT.
func (s *SIT) MatchedSet(preds []engine.Pred, q engine.PredSet) engine.PredSet {
	var m engine.PredSet
	for _, i := range q.Indices() {
		if s.exprKeys[preds[i].Key()] {
			m = m.Add(i)
		}
	}
	return m
}
