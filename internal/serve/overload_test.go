package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"condsel/internal/robust"
)

// TestOverloadNeverErrors drives the server at 4× its admission capacity
// through real HTTP and asserts the robustness contract: zero 5xx, every
// response a finite estimate with provenance, overload absorbed by shedding
// to cheaper tiers rather than by refusal. Run under -race this also
// exercises the limiter, SLO controller and metrics for data races.
func TestOverloadNeverErrors(t *testing.T) {
	t.Parallel()
	f := newTestFixture(7)
	// Tier costs make full fidelity unaffordable under the 30ms deadline
	// once the slots are contended: full-dp 20ms, budgeted 5ms, gvm 500µs,
	// no-sit 50µs.
	stub := &stubEstimator{delays: [4]time.Duration{
		20 * time.Millisecond, 5 * time.Millisecond, 500 * time.Microsecond, 50 * time.Microsecond,
	}}
	const slots = 4
	s := f.server(t, Config{
		Estimator:       stub,
		MaxConcurrent:   slots,
		MaxQueue:        slots,
		DefaultDeadline: 30 * time.Millisecond,
		SLO: SLOConfig{
			TargetP99:  25 * time.Millisecond,
			Window:     32,
			MinSamples: 16,
			HoldDown:   20 * time.Millisecond,
			HoldUp:     10 * time.Second, // no re-opening during the burst
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers = 4 * slots
	const perWorker = 15
	type outcome struct {
		status int
		res    EstimateResult
	}
	results := make(chan outcome, workers*perWorker)
	var wg sync.WaitGroup
	client := ts.Client()
	url := ts.URL + "/estimate?q=" + urlQuery(f.query)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := client.Get(url)
				if err != nil {
					t.Errorf("request failed at transport level: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var res EstimateResult
				if err := json.Unmarshal(body, &res); err != nil {
					t.Errorf("status %d, non-JSON body %q", resp.StatusCode, body)
					return
				}
				results <- outcome{resp.StatusCode, res}
			}
		}()
	}
	wg.Wait()
	close(results)

	var total, sheds int
	tiers := map[string]int{}
	for o := range results {
		total++
		if o.status >= 500 {
			t.Fatalf("5xx under overload: %d %+v", o.status, o.res)
		}
		if o.status != http.StatusOK {
			t.Fatalf("non-200 under overload: %d %+v", o.status, o.res)
		}
		if o.res.Tier == "" {
			t.Fatalf("response missing provenance: %+v", o.res)
		}
		if o.res.Shed {
			sheds++
			if o.res.ShedCause == "" {
				t.Fatalf("shed response missing cause: %+v", o.res)
			}
			if o.res.Tier == robust.TierFullDP.String() || o.res.Tier == robust.TierBudgetedDP.String() {
				t.Fatalf("shed request answered above gvm: %+v", o.res)
			}
		}
		tiers[o.res.Tier]++
	}
	if total != workers*perWorker {
		t.Fatalf("got %d results, want %d", total, workers*perWorker)
	}
	if sheds == 0 {
		t.Fatal("4x overload produced zero sheds — admission control never engaged")
	}
	degraded := total - tiers[robust.TierFullDP.String()]
	if degraded == 0 {
		t.Fatalf("no degraded responses under 4x overload: %v", tiers)
	}
	t.Logf("tiers: %v, sheds: %d/%d", tiers, sheds, total)

	// The metrics must agree with the observed traffic.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples := parsePrometheus(t, string(body))
	var metricSheds, metric200 float64
	for series, v := range samples {
		if len(series) > len("condsel_shed_total{") && series[:len("condsel_shed_total{")] == "condsel_shed_total{" {
			metricSheds += v
		}
	}
	metric200 = samples[`condsel_requests_total{endpoint="estimate",code="200"}`]
	if int(metric200) != total {
		t.Fatalf("condsel_requests_total 200 = %v, want %d", metric200, total)
	}
	if int(metricSheds) != sheds {
		t.Fatalf("condsel_shed_total = %v, want %d", metricSheds, sheds)
	}
}

// TestOverloadRecovery: after the burst subsides, light traffic under a
// generous deadline brings the SLO controller back to full fidelity within
// its hysteresis window.
func TestOverloadRecovery(t *testing.T) {
	t.Parallel()
	f := newTestFixture(8)
	stub := &stubEstimator{delays: [4]time.Duration{
		10 * time.Millisecond, 2 * time.Millisecond, 100 * time.Microsecond, 10 * time.Microsecond,
	}}
	s := f.server(t, Config{
		Estimator:       stub,
		MaxConcurrent:   2,
		MaxQueue:        2,
		DefaultDeadline: 500 * time.Millisecond,
		SLO: SLOConfig{
			TargetP99:  5 * time.Millisecond,
			Window:     16,
			MinSamples: 8,
			HoldDown:   time.Millisecond,
			HoldUp:     5 * time.Millisecond,
		},
	})

	// Phase 1: saturate until the controller tightens. Serial requests at
	// full-dp cost 10ms each — double the 5ms target, so p99 breaches as
	// soon as the window fills.
	deadline := time.Now().Add(10 * time.Second)
	for s.slo.Admitted() == robust.TierFullDP {
		if time.Now().After(deadline) {
			t.Fatal("controller never tightened under sustained breach")
		}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/estimate?q="+urlQuery(f.query), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("phase 1 request failed: %d %s", rec.Code, rec.Body.String())
		}
	}
	tightened := s.slo.Admitted()

	// Phase 2: degraded-tier requests are fast (≤2ms, under the 2.5ms
	// reopen threshold), so sustained calm must walk fidelity back up to
	// full-dp within the hysteresis holds.
	for s.slo.Admitted() != robust.TierFullDP {
		if time.Now().After(deadline) {
			t.Fatalf("controller stuck at %v, never recovered to full-dp (was %v)",
				s.slo.Admitted(), tightened)
		}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/estimate?q="+urlQuery(f.query), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("phase 2 request failed: %d %s", rec.Code, rec.Body.String())
		}
	}
	st := s.slo.Stats()
	if st.Tightenings == 0 || st.Reopenings == 0 {
		t.Fatalf("stats = %+v, want both tightenings and reopenings", st)
	}
}

// TestLimiterQueueWaitChargedToDeadline: a queued request's wait is bounded
// by its own deadline, and the shed verdict arrives in time to still answer.
func TestLimiterQueueWaitChargedToDeadline(t *testing.T) {
	t.Parallel()
	l := NewLimiter(1, 4)
	release, adm := l.Acquire(context.Background(), time.Second)
	if !adm.Admitted {
		t.Fatal("empty limiter refused")
	}
	defer release()

	const maxWait = 20 * time.Millisecond
	start := time.Now()
	rel2, adm2 := l.Acquire(context.Background(), maxWait)
	waited := time.Since(start)
	if adm2.Admitted {
		rel2()
		t.Fatal("second acquire admitted past a held slot")
	}
	if adm2.ShedCause != ShedDeadline {
		t.Fatalf("shed cause = %q, want %q", adm2.ShedCause, ShedDeadline)
	}
	if waited < maxWait || waited > maxWait+250*time.Millisecond {
		t.Fatalf("waited %v for a %v budget", waited, maxWait)
	}
}

// TestLimiterQueueBound: the wait queue rejects the (maxQueue+1)-th waiter
// immediately with queue-full.
func TestLimiterQueueBound(t *testing.T) {
	t.Parallel()
	l := NewLimiter(1, 2)
	release, adm := l.Acquire(context.Background(), time.Second)
	if !adm.Admitted {
		t.Fatal("empty limiter refused")
	}
	defer release()

	var wg sync.WaitGroup
	enqueued := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			enqueued <- struct{}{}
			_, a := l.Acquire(context.Background(), 300*time.Millisecond)
			if a.Admitted {
				t.Error("queued request admitted while the slot was held")
			}
		}()
	}
	<-enqueued
	<-enqueued
	// Wait until both waiters are actually parked in the queue.
	for i := 0; l.QueueDepth() < 2; i++ {
		if i > 1000 {
			t.Fatalf("queue depth stuck at %d", l.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	_, a := l.Acquire(context.Background(), 300*time.Millisecond)
	if a.Admitted || a.ShedCause != ShedQueueFull {
		t.Fatalf("overflow acquire = %+v, want queue-full shed", a)
	}
	wg.Wait()
}
