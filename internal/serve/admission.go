package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// Shed causes, as reported in AdmitResult.ShedCause, in Provenance skip
// reasons and as the `cause` label of condsel_shed_total.
const (
	// ShedQueueFull: the wait queue was already at capacity on arrival.
	ShedQueueFull = "queue-full"
	// ShedDeadline: waiting for a slot would have exhausted the request's
	// remaining deadline (or the deadline expired while queued).
	ShedDeadline = "deadline"
)

// Limiter is the token-based admission controller: a fixed number of
// concurrency slots plus a bounded wait pool. A request that cannot take a
// slot immediately may wait — but only as long as its own deadline affords,
// so queue-wait time is charged against the request's budget, never added on
// top of it. A request that would exhaust its deadline queuing, or that
// arrives with the wait pool full, is *shed*: not rejected, but redirected
// by the caller to a ladder tier cheap enough to answer without a slot.
//
// Waiters are released in scheduler order, not strict FIFO; the bound is on
// how many may wait, not on their order. All methods are safe for concurrent
// use.
type Limiter struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	admitted atomic.Int64 // slots currently held
}

// AdmitResult reports one admission decision.
type AdmitResult struct {
	// Admitted says a slot was granted; the caller must call the returned
	// release function when done.
	Admitted bool
	// ShedCause names why admission was denied ("" when admitted).
	ShedCause string
	// Waited is how long the request spent queued, whatever the outcome.
	Waited time.Duration
}

// NewLimiter returns a limiter with the given concurrency slots and wait-
// queue bound (minimums of 1 and 0 are enforced).
func NewLimiter(slots, maxQueue int) *Limiter {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	ch := make(chan struct{}, slots)
	for i := 0; i < slots; i++ {
		ch <- struct{}{}
	}
	return &Limiter{slots: ch, maxQueue: int64(maxQueue)}
}

// Acquire takes a slot, waiting at most maxWait (and never past ctx's
// deadline). On admission the returned release function returns the slot —
// it must be called exactly once. On shed the release function is nil.
func (l *Limiter) Acquire(ctx context.Context, maxWait time.Duration) (func(), AdmitResult) {
	select {
	case <-l.slots:
		return l.release(), AdmitResult{Admitted: true}
	default:
	}
	if maxWait <= 0 {
		return nil, AdmitResult{ShedCause: ShedDeadline}
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return nil, AdmitResult{ShedCause: ShedQueueFull}
	}
	defer l.queued.Add(-1)

	start := time.Now()
	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case <-l.slots:
		return l.release(), AdmitResult{Admitted: true, Waited: time.Since(start)}
	case <-timer.C:
		return nil, AdmitResult{ShedCause: ShedDeadline, Waited: time.Since(start)}
	case <-ctx.Done():
		return nil, AdmitResult{ShedCause: ShedDeadline, Waited: time.Since(start)}
	}
}

// release builds the slot-return closure for one successful acquisition.
func (l *Limiter) release() func() {
	l.admitted.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			l.admitted.Add(-1)
			l.slots <- struct{}{}
		}
	}
}

// QueueDepth is the number of requests currently waiting for a slot.
func (l *Limiter) QueueDepth() int64 { return l.queued.Load() }

// InFlight is the number of slots currently held.
func (l *Limiter) InFlight() int64 { return l.admitted.Load() }

// Capacity returns the limiter's slot count.
func (l *Limiter) Capacity() int { return cap(l.slots) }
