// Package serve is the estimation-as-a-service layer: an overload-safe HTTP
// front end over the robust degradation ladder where robustness is the
// architecture, not an afterthought. Three mechanisms compose:
//
//   - Admission control (Limiter): a fixed pool of concurrency slots plus a
//     bounded wait queue. Queue-wait is charged against the request's own
//     deadline, and a request that cannot afford to wait is *shed* — answered
//     immediately from a cheaper ladder tier, never rejected. Under any
//     sustained overload every request still gets a finite, provenance-
//     stamped estimate; only fidelity degrades.
//
//   - Deadline-mapped degradation: each request carries a deadline (header,
//     parameter, or the configured default) that robust.BudgetForDeadline
//     translates into a ladder entry tier and node budget. Slow requests get
//     the full DP; tight ones enter lower, so the deadline is met by
//     construction rather than by killing work at the wire.
//
//   - SLO enforcement (SLOController): a rolling-p99 controller caps the
//     tier admission may grant. When the observed tail breaches the target
//     the cap tightens one rung (with hold-down); when the tail stays calm
//     it re-opens (with hold-up hysteresis). The service converges to the
//     highest fidelity the current load can sustain.
//
// Every response carries the ladder Provenance — tier, fallback trail,
// statistics generation — so a consumer can always tell a full-fidelity
// answer from a degraded one.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"condsel/internal/core"
	"condsel/internal/engine"
	"condsel/internal/lifecycle"
	"condsel/internal/qtext"
	"condsel/internal/robust"
	"condsel/internal/sit"
)

// Estimator is the estimation backend the server fronts. robust ladders,
// lifecycle-managed epochs and test stubs all satisfy it.
type Estimator interface {
	Estimate(ctx context.Context, q *engine.Query, cfg robust.Config) (float64, robust.Provenance)
}

// EstimatorFunc adapts a function to the Estimator interface.
type EstimatorFunc func(ctx context.Context, q *engine.Query, cfg robust.Config) (float64, robust.Provenance)

func (f EstimatorFunc) Estimate(ctx context.Context, q *engine.Query, cfg robust.Config) (float64, robust.Provenance) {
	return f(ctx, q, cfg)
}

// LadderSource builds an Estimator over a core-estimator source — typically
// lifecycle.(*Manager).Estimator, so every request sees the freshest epoch
// through one atomic load. A fresh ladder per request is deliberate:
// robust.New is allocation-cheap and the per-request Config (deadline tier,
// SLO cap, shed cap) is baked into it.
func LadderSource(source func() *core.Estimator) Estimator {
	return EstimatorFunc(func(ctx context.Context, q *engine.Query, cfg robust.Config) (float64, robust.Provenance) {
		return robust.New(source(), cfg).Cardinality(ctx, q)
	})
}

// Config assembles a Server. Catalog and Estimator are required; everything
// else defaults sanely.
type Config struct {
	// Catalog resolves query text (qtext grammar) against table schemas.
	Catalog *engine.Catalog
	// Estimator answers admitted requests. Use LadderSource to front a
	// lifecycle manager.
	Estimator Estimator

	// MaxConcurrent is the admission slot count (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds the wait queue (default 4×MaxConcurrent).
	MaxQueue int
	// DefaultDeadline applies when a request names none (default 250ms).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-supplied deadlines (default 5s).
	MaxDeadline time.Duration
	// FloorReserve is held back from the deadline before queuing so a shed
	// request still has time to answer from a cheap tier (default 2ms).
	FloorReserve time.Duration

	// SLO configures the tail-latency controller (zero value: 500ms target).
	SLO SLOConfig
	// Clock drives the SLO controller's hysteresis (default: real time).
	Clock Clock

	// DrainDeadline bounds how long Shutdown waits for in-flight requests
	// (default 10s).
	DrainDeadline time.Duration
	// RetryAfter is the Retry-After value on drain 503s (default 1s).
	RetryAfter time.Duration

	// Cache, Pool and Lifecycle are optional metrics sources for /metrics.
	Cache     *core.SelCacheStore
	Pool      func() *sit.Pool
	Lifecycle *lifecycle.Manager
	// Cluster is an optional metrics source for the distributed statistics
	// tier. The service stays decoupled from internal/cluster: a cluster
	// front end (cmd/sitnode) adapts its node's counters into this struct.
	Cluster func() ClusterCounters
}

// ClusterCounters is the /metrics slice of a cluster node's state. Field
// meanings mirror cluster.Counters; the duplicate type keeps serve free of
// a cluster dependency so single-node deployments don't link the tier.
type ClusterCounters struct {
	Nodes            int    // membership size
	PeersAdmitted    int    // peers with an admitted replica
	PeersMissing     int    // peers with no admitted replica
	PeersTripped     int    // peers whose breaker is currently open
	Epoch            uint64 // this node's rebuild epoch
	LocalGeneration  uint64 // local shard content generation
	MergedGeneration uint64 // merged pool content generation
	Replications     int64  // admitted peer frames
	ReplFailures     int64  // replicate calls that gave up
	FenceRejections  int64  // frames refused by the generation vector
	Degraded         int64  // estimates degraded by an unreachable shard
	Retries          int64  // fetch retries beyond first attempts
	BreakerTrips     int64  // cumulative breaker trips across peers
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 250 * time.Millisecond
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Second
	}
	if c.FloorReserve <= 0 {
		c.FloorReserve = 2 * time.Millisecond
	}
	if c.SLO.TargetP99 == 0 {
		c.SLO.TargetP99 = 500 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the HTTP estimation service. Create with New, run with Serve,
// stop with Shutdown (graceful: drains in-flight work first).
type Server struct {
	cfg     Config
	limiter *Limiter
	slo     *SLOController
	mux     *http.ServeMux
	http    *http.Server

	draining atomic.Bool
	inflight sync.WaitGroup
	m        metrics
}

// New validates cfg and assembles the server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, errors.New("serve: Config.Catalog is required")
	}
	if cfg.Estimator == nil {
		return nil, errors.New("serve: Config.Estimator is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		limiter: NewLimiter(cfg.MaxConcurrent, cfg.MaxQueue),
		slo:     NewSLOController(cfg.SLO, cfg.Clock),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/estimate", s.handleEstimate)
	s.mux.HandleFunc("/estimate/batch", s.handleBatch)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return s, nil
}

// Handler exposes the mux (tests drive it through httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// DeadlineHeader names the per-request deadline override, in milliseconds.
const DeadlineHeader = "X-Condsel-Deadline-Ms"

// EstimateResult is the JSON body of /estimate responses (and each element
// of /estimate/batch responses).
type EstimateResult struct {
	Query          string  `json:"query,omitempty"`
	Cardinality    float64 `json:"cardinality"`
	Tier           string  `json:"tier"`
	FallbackReason string  `json:"fallback_reason,omitempty"`
	Generation     uint64  `json:"generation"`
	DeadlineMs     float64 `json:"deadline_ms"`
	QueueWaitMs    float64 `json:"queue_wait_ms"`
	ElapsedMs      float64 `json:"elapsed_ms"`
	Shed           bool    `json:"shed,omitempty"`
	ShedCause      string  `json:"shed_cause,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// deadlineFor extracts the request deadline: header, then query parameter,
// then the default; always clamped to (0, MaxDeadline].
func (s *Server) deadlineFor(r *http.Request) (time.Duration, error) {
	raw := r.Header.Get(DeadlineHeader)
	if raw == "" {
		raw = r.URL.Query().Get("deadline_ms")
	}
	if raw == "" {
		return s.cfg.DefaultDeadline, nil
	}
	ms, err := strconv.ParseFloat(raw, 64)
	if err != nil || ms != ms || ms <= 0 {
		return 0, fmt.Errorf("invalid deadline %q: want a positive millisecond count", raw)
	}
	d := time.Duration(ms * float64(time.Millisecond))
	if d <= 0 || d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d, nil
}

// EstimateQuery runs one admitted-or-shed estimation under the given
// deadline. Exported so benchmarks can measure the service layer in-process,
// without HTTP framing. The flow is the whole architecture in one screen:
// deadline → admission (queue-wait charged to the deadline) → deadline-mapped
// ladder config → SLO cap → estimate → observe.
func (s *Server) EstimateQuery(ctx context.Context, q *engine.Query, deadline time.Duration, endpoint string) EstimateResult {
	start := time.Now()
	ctx, cancel := context.WithDeadline(ctx, start.Add(deadline))
	defer cancel()

	maxWait := deadline - s.cfg.FloorReserve
	release, adm := s.limiter.Acquire(ctx, maxWait)
	s.m.queueWait.observe(adm.Waited)

	remaining := deadline - time.Since(start)
	var cfg robust.Config
	if adm.Admitted {
		defer release()
		cfg = robust.BudgetForDeadline(remaining)
	} else {
		// Shed: no slot, so answer from a tier cheap enough to run unslotted.
		// GVM is microseconds-cheap; the deadline mapping may push lower still.
		s.m.observeShed(adm.ShedCause)
		cfg = robust.BudgetForDeadline(remaining).Cap(robust.TierGVM, "admission-shed: "+adm.ShedCause)
	}
	cfg = cfg.Cap(s.slo.Admitted(), "slo-capped")

	card, prov := s.cfg.Estimator.Estimate(ctx, q, cfg)
	elapsed := time.Since(start)
	s.slo.Observe(elapsed)
	s.m.observeRequest(endpoint, http.StatusOK, prov.Tier, elapsed)
	return EstimateResult{
		Cardinality:    card,
		Tier:           prov.Tier.String(),
		FallbackReason: prov.FallbackReason,
		Generation:     prov.Generation,
		DeadlineMs:     float64(deadline) / float64(time.Millisecond),
		QueueWaitMs:    float64(adm.Waited) / float64(time.Millisecond),
		ElapsedMs:      float64(elapsed) / float64(time.Millisecond),
		Shed:           !adm.Admitted,
		ShedCause:      adm.ShedCause,
	}
}

// queryText pulls the query text from ?q= or the request body.
func queryText(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body == nil {
		return "", errors.New("missing query: pass ?q= or a request body")
	}
	b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return "", fmt.Errorf("reading body: %w", err)
	}
	text := strings.TrimSpace(string(b))
	if text == "" {
		return "", errors.New("missing query: pass ?q= or a request body")
	}
	return text, nil
}

// enter registers a request with the drain machinery. The WaitGroup is
// incremented before the draining check so Shutdown's Wait cannot miss a
// request that raced past BeginDrain.
func (s *Server) enter(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Done()
		s.m.drained.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
		s.m.observeRequest(endpoint, http.StatusServiceUnavailable, 0, 0)
		writeJSON(w, http.StatusServiceUnavailable, EstimateResult{Error: "draining"})
		return false
	}
	return true
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w, r, "estimate") {
		return
	}
	defer s.inflight.Done()

	deadline, err := s.deadlineFor(r)
	if err != nil {
		s.badRequest(w, "estimate", err)
		return
	}
	text, err := queryText(r)
	if err != nil {
		s.badRequest(w, "estimate", err)
		return
	}
	q, err := qtext.Parse(s.cfg.Catalog, text)
	if err != nil {
		s.badRequest(w, "estimate", err)
		return
	}
	res := s.EstimateQuery(r.Context(), q, deadline, "estimate")
	writeJSON(w, http.StatusOK, res)
}

// handleBatch estimates a newline-separated batch of queries under one
// shared deadline, answering per-query results in order. A parse failure
// fails only its own line (error recorded in that element), never the batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w, r, "batch") {
		return
	}
	defer s.inflight.Done()

	deadline, err := s.deadlineFor(r)
	if err != nil {
		s.badRequest(w, "batch", err)
		return
	}
	text, err := queryText(r)
	if err != nil {
		s.badRequest(w, "batch", err)
		return
	}
	start := time.Now()
	var out []EstimateResult
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		q, err := qtext.Parse(s.cfg.Catalog, line)
		if err != nil {
			out = append(out, EstimateResult{Query: line, Error: err.Error()})
			s.m.observeRequest("batch", http.StatusBadRequest, 0, 0)
			continue
		}
		remaining := deadline - time.Since(start)
		if remaining < time.Millisecond {
			remaining = time.Millisecond // floor: every line still answers
		}
		res := s.EstimateQuery(r.Context(), q, remaining, "batch")
		res.Query = line
		out = append(out, res)
	}
	if out == nil {
		s.badRequest(w, "batch", errors.New("empty batch"))
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz reports 503 once draining so load balancers stop routing here
// while in-flight work completes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

func (s *Server) badRequest(w http.ResponseWriter, endpoint string, err error) {
	s.m.observeRequest(endpoint, http.StatusBadRequest, 0, 0)
	writeJSON(w, http.StatusBadRequest, EstimateResult{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// SLOStats snapshots the SLO controller (for benchmarks and operators; the
// same numbers are exported on /metrics).
func (s *Server) SLOStats() SLOStats { return s.slo.Stats() }

// Serve accepts connections on ln until Shutdown. It returns the error from
// the underlying http.Server (http.ErrServerClosed on clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	return s.http.Serve(ln)
}

// BeginDrain flips the server into draining mode: /readyz goes 503, new
// estimation requests are refused with 503 + Retry-After, in-flight requests
// keep running. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown gracefully stops the server: stop admitting, wait for in-flight
// requests up to the drain deadline (or ctx, whichever is sooner), then close
// the listener. Final-checkpoint flushing belongs to the process that owns
// the lifecycle manager (call its Stop after Shutdown returns).
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()

	drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainDeadline)
	defer cancel()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-drainCtx.Done():
		drainErr = fmt.Errorf("serve: drain deadline elapsed with requests in flight: %w", drainCtx.Err())
	}
	if err := s.http.Shutdown(drainCtx); err != nil && drainErr == nil && !errors.Is(err, context.DeadlineExceeded) {
		drainErr = err
	}
	return drainErr
}
