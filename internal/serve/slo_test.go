package serve

import (
	"testing"
	"time"

	"condsel/internal/robust"
)

// fakeClock is a manually advanced clock: with it the SLO controller is a
// pure function of the observation sequence.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testSLOConfig() SLOConfig {
	return SLOConfig{
		TargetP99:      100 * time.Millisecond,
		Window:         16,
		MinSamples:     8,
		HoldDown:       10 * time.Millisecond,
		HoldUp:         50 * time.Millisecond,
		ReopenFraction: 0.5,
	}
}

// feed pushes n observations of latency d, advancing the clock by step per
// observation.
func feed(c *SLOController, clk *fakeClock, n int, d, step time.Duration) {
	for i := 0; i < n; i++ {
		clk.advance(step)
		c.Observe(d)
	}
}

// TestSLOTightensMonotonicallyUnderBreach: sustained p99 breach walks the
// admitted tier down one rung at a time, respecting hold-down spacing, and
// stops at the floor.
func TestSLOTightensMonotonicallyUnderBreach(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := NewSLOController(testSLOConfig(), clk)

	if got := c.Admitted(); got != robust.TierFullDP {
		t.Fatalf("initial tier = %v, want full-dp", got)
	}
	// 200ms observations breach the 100ms target. 1ms steps mean each
	// refilled window (8 samples) also satisfies the 10ms hold-down.
	feed(c, clk, 200, 200*time.Millisecond, 2*time.Millisecond)
	if got := c.Admitted(); got != robust.TierNoSIT {
		t.Fatalf("after sustained breach tier = %v, want no-sit floor", got)
	}
	trans := c.Transitions()
	if len(trans) != 3 {
		t.Fatalf("got %d transitions, want 3 (one per rung): %+v", len(trans), trans)
	}
	for i, tr := range trans {
		if tr.To != tr.From+1 {
			t.Fatalf("transition %d not a single downward rung: %+v", i, tr)
		}
		if i > 0 && trans[i].At.Sub(trans[i-1].At) < c.cfg.HoldDown {
			t.Fatalf("transitions %d,%d closer than hold-down: %+v", i-1, i, trans)
		}
	}
	if st := c.Stats(); st.Tightenings != 3 || st.Reopenings != 0 {
		t.Fatalf("stats = %+v, want 3 tightenings, 0 reopenings", st)
	}
}

// TestSLOReopensAfterSustainedCalm: once p99 stays under the reopen
// threshold for the hold-up window, fidelity returns one rung at a time all
// the way to full-dp.
func TestSLOReopensAfterSustainedCalm(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := NewSLOController(testSLOConfig(), clk)

	feed(c, clk, 200, 200*time.Millisecond, 2*time.Millisecond)
	if got := c.Admitted(); got != robust.TierNoSIT {
		t.Fatalf("setup: tier = %v, want no-sit", got)
	}
	// 10ms observations are calm (≤ 50ms reopen threshold). Each reopening
	// needs MinSamples plus a full 50ms hold-up of continuous calm; 2ms
	// steps give 25 observations per hold-up, so 3 rungs need well under
	// 300 observations.
	feed(c, clk, 300, 10*time.Millisecond, 2*time.Millisecond)
	if got := c.Admitted(); got != robust.TierFullDP {
		t.Fatalf("after sustained calm tier = %v, want full-dp restored", got)
	}
	st := c.Stats()
	if st.Reopenings != 3 {
		t.Fatalf("reopenings = %d, want 3", st.Reopenings)
	}
}

// TestSLOHysteresisHoldsThroughBriefCalm: calm shorter than hold-up must not
// re-open — one quiet moment is not a recovery.
func TestSLOHysteresisHoldsThroughBriefCalm(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := NewSLOController(testSLOConfig(), clk)

	feed(c, clk, 60, 200*time.Millisecond, 2*time.Millisecond)
	tier := c.Admitted()
	if tier == robust.TierFullDP {
		t.Fatal("setup: controller never tightened")
	}
	// 20ms of calm (< 50ms hold-up), then breach again: tier must not have
	// re-opened in between.
	feed(c, clk, 10, 10*time.Millisecond, 2*time.Millisecond)
	if got := c.Admitted(); got < tier {
		t.Fatalf("re-opened after only 20ms calm: %v -> %v", tier, got)
	}
}

// TestSLOMidLatencyIsStable: p99 between the reopen threshold and the target
// neither tightens nor re-opens — the dead band is what prevents
// oscillation.
func TestSLOMidLatencyIsStable(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := NewSLOController(testSLOConfig(), clk)

	feed(c, clk, 60, 200*time.Millisecond, 2*time.Millisecond)
	tier := c.Admitted()
	before := c.Stats()
	// 80ms: below the 100ms target, above the 50ms reopen threshold.
	feed(c, clk, 500, 80*time.Millisecond, 2*time.Millisecond)
	after := c.Stats()
	if after.AdmittedTier != tier {
		t.Fatalf("dead-band latency moved the tier: %v -> %v", tier, after.AdmittedTier)
	}
	if after.Tightenings != before.Tightenings || after.Reopenings != before.Reopenings {
		t.Fatalf("dead-band latency changed counters: %+v -> %+v", before, after)
	}
}

// TestSLODisabled: a non-positive target disables the controller outright.
func TestSLODisabled(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(0, 0)}
	c := NewSLOController(SLOConfig{TargetP99: -1}, clk)
	feed(c, clk, 100, time.Hour, time.Millisecond)
	if got := c.Admitted(); got != robust.TierFullDP {
		t.Fatalf("disabled controller tightened to %v", got)
	}
}

// TestSLODeterminism: identical observation sequences produce identical
// transition traces — the property the overload tests rely on.
func TestSLODeterminism(t *testing.T) {
	t.Parallel()
	run := func() []TierTransition {
		clk := &fakeClock{t: time.Unix(0, 0)}
		c := NewSLOController(testSLOConfig(), clk)
		feed(c, clk, 120, 150*time.Millisecond, 3*time.Millisecond)
		feed(c, clk, 120, 20*time.Millisecond, 3*time.Millisecond)
		return c.Transitions()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
