package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"condsel/internal/core"
	"condsel/internal/engine"
	"condsel/internal/robust"
	"condsel/internal/sit"
)

// testFixture builds the repository's standard 3-table correlated star (the
// same shape internal/robust tests use) plus a server fronting it.
type testFixture struct {
	cat   *engine.Catalog
	pool  *sit.Pool
	est   *core.Estimator
	query string
}

func newTestFixture(seed int64) *testFixture {
	rng := rand.New(rand.NewSource(seed))
	cat := engine.NewCatalog()
	const nCustomers, nOrders = 50, 250

	cid := make([]int64, nCustomers)
	nation := make([]int64, nCustomers)
	for i := range cid {
		cid[i] = int64(i)
		if rng.Float64() < 0.8 {
			nation[i] = 1
		} else {
			nation[i] = int64(2 + rng.Intn(20))
		}
	}
	cat.MustAddTable(&engine.Table{Name: "customer", Cols: []*engine.Column{
		{Name: "id", Vals: cid},
		{Name: "nation", Vals: nation},
	}})

	oid := make([]int64, nOrders)
	ocid := make([]int64, nOrders)
	price := make([]int64, nOrders)
	var liOID, liQty []int64
	for i := range oid {
		oid[i] = int64(i)
		ocid[i] = int64(rng.Intn(nCustomers))
		price[i] = int64(rng.Intn(1000))
		items := 1
		if price[i] > 800 {
			items = 15
		}
		for k := 0; k < items; k++ {
			liOID = append(liOID, oid[i])
			liQty = append(liQty, int64(rng.Intn(50)))
		}
	}
	cat.MustAddTable(&engine.Table{Name: "orders", Cols: []*engine.Column{
		{Name: "id", Vals: oid},
		{Name: "cid", Vals: ocid},
		{Name: "price", Vals: price},
	}})
	cat.MustAddTable(&engine.Table{Name: "lineitem", Cols: []*engine.Column{
		{Name: "oid", Vals: liOID},
		{Name: "qty", Vals: liQty},
	}})

	preds := []engine.Pred{
		engine.Join(cat.MustAttr("lineitem.oid"), cat.MustAttr("orders.id")),
		engine.Join(cat.MustAttr("orders.cid"), cat.MustAttr("customer.id")),
		engine.Filter(cat.MustAttr("orders.price"), 801, 1000),
		engine.Eq(cat.MustAttr("customer.nation"), 1),
	}
	q := engine.NewQuery(cat, preds)
	pool := sit.BuildWorkloadPool(sit.NewBuilder(cat), []*engine.Query{q}, 2)
	return &testFixture{
		cat:   cat,
		pool:  pool,
		est:   core.NewEstimator(cat, pool, core.NInd{}),
		query: "lineitem.oid = orders.id AND orders.cid = customer.id AND orders.price BETWEEN 801 AND 1000 AND customer.nation = 1",
	}
}

func (f *testFixture) server(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Catalog = f.cat
	if cfg.Estimator == nil {
		cfg.Estimator = LadderSource(func() *core.Estimator { return f.est })
	}
	if cfg.Pool == nil {
		cfg.Pool = func() *sit.Pool { return f.pool }
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func doJSON(t *testing.T, h http.Handler, method, target, body string) (int, EstimateResult, http.Header) {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var res EstimateResult
	if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest &&
		rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("%s %s: unexpected status %d: %s", method, target, rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, target, rec.Body.String(), err)
	}
	return rec.Code, res, rec.Result().Header
}

// TestEstimateEndpoint: a healthy request under a generous deadline answers
// 200 at full fidelity with complete provenance.
func TestEstimateEndpoint(t *testing.T) {
	t.Parallel()
	f := newTestFixture(1)
	s := f.server(t, Config{})

	code, res, _ := doJSON(t, s.Handler(), "GET",
		"/estimate?deadline_ms=1000&q="+urlQuery(f.query), "")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (%+v)", code, res)
	}
	if res.Tier != robust.TierFullDP.String() {
		t.Fatalf("tier = %q, want full-dp (reason %q)", res.Tier, res.FallbackReason)
	}
	if math.IsNaN(res.Cardinality) || math.IsInf(res.Cardinality, 0) || res.Cardinality < 0 {
		t.Fatalf("cardinality = %v, want finite non-negative", res.Cardinality)
	}
	if res.DeadlineMs != 1000 {
		t.Fatalf("deadline_ms = %v, want 1000", res.DeadlineMs)
	}
}

// TestDeadlineMappedDegradation: a deadline in the GVM band answers from a
// cheaper tier with the "deadline-mapped" skip reason in its provenance.
func TestDeadlineMappedDegradation(t *testing.T) {
	t.Parallel()
	f := newTestFixture(2)
	s := f.server(t, Config{FloorReserve: time.Nanosecond})

	req := httptest.NewRequest("GET", "/estimate?q="+urlQuery(f.query), nil)
	req.Header.Set(DeadlineHeader, "3")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var res EstimateResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if res.Tier == robust.TierFullDP.String() || res.Tier == robust.TierBudgetedDP.String() {
		t.Fatalf("3ms deadline answered at %q, want gvm or lower", res.Tier)
	}
	if !strings.Contains(res.FallbackReason, "deadline-mapped") {
		t.Fatalf("fallback reason %q does not carry deadline-mapped", res.FallbackReason)
	}
}

// TestBadRequestsAreNever5xx: malformed input is the client's fault — 400
// with a JSON error body, never a server error.
func TestBadRequestsAreNever5xx(t *testing.T) {
	t.Parallel()
	f := newTestFixture(3)
	s := f.server(t, Config{})

	for _, target := range []string{
		"/estimate",                           // no query at all
		"/estimate?q=nonsense%20garbage",      // unparsable
		"/estimate?q=missing.table%20%3D%201", // unknown attribute
		"/estimate?deadline_ms=bogus&q=" + urlQuery(f.query),
		"/estimate?deadline_ms=-5&q=" + urlQuery(f.query),
	} {
		code, res, _ := doJSON(t, s.Handler(), "GET", target, "")
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", target, code)
		}
		if res.Error == "" {
			t.Fatalf("%s: 400 with empty error field", target)
		}
	}
}

// TestBatchEndpoint: one bad line fails alone; good lines still answer, in
// order, each with provenance.
func TestBatchEndpoint(t *testing.T) {
	t.Parallel()
	f := newTestFixture(4)
	s := f.server(t, Config{})

	body := f.query + "\n\nnot a query\n" + f.query + "\n"
	req := httptest.NewRequest("POST", "/estimate/batch?deadline_ms=2000", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out []EstimateResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3", len(out))
	}
	if out[0].Error != "" || out[2].Error != "" {
		t.Fatalf("good lines errored: %+v / %+v", out[0], out[2])
	}
	if out[1].Error == "" {
		t.Fatalf("bad line did not error: %+v", out[1])
	}
	for _, r := range []EstimateResult{out[0], out[2]} {
		if r.Tier == "" {
			t.Fatalf("result missing provenance: %+v", r)
		}
	}
}

// TestHealthEndpoints: /healthz is always 200; /readyz flips to 503 once
// draining.
func TestHealthEndpoints(t *testing.T) {
	t.Parallel()
	f := newTestFixture(5)
	s := f.server(t, Config{})

	for _, path := range []string{"/healthz", "/readyz"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, rec.Code)
		}
	}
	s.BeginDrain()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", rec.Code)
	}
}

// requiredMetrics are the series the ISSUE's field dictionary promises.
var requiredMetrics = []string{
	"condsel_requests_total",
	"condsel_responses_tier_total",
	"condsel_request_duration_seconds_bucket",
	"condsel_request_duration_seconds_sum",
	"condsel_request_duration_seconds_count",
	"condsel_queue_wait_seconds_bucket",
	"condsel_shed_total",
	"condsel_drain_refused_total",
	"condsel_queue_depth",
	"condsel_inflight",
	"condsel_capacity",
	"condsel_slo_admitted_tier",
	"condsel_slo_tightenings_total",
	"condsel_slo_reopenings_total",
	"condsel_pool_sits",
	"condsel_pool_quarantined",
	"condsel_pool_generation",
}

// parsePrometheus is a minimal exposition-format validator: every line is a
// comment or `name{labels} value` with a parseable non-negative value, every
// # TYPE precedes its samples, histogram buckets are cumulative. Returns the
// sample set keyed by full series (name + labels).
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				typed[fields[2]] = true
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valText, err)
		}
		if math.IsNaN(val) || val < 0 {
			t.Fatalf("line %d: value %v out of range", ln+1, val)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, series)
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = val
	}
	return samples
}

// TestMetricsEndpoint: after traffic, /metrics is valid exposition text
// carrying every promised series, and the counters agree with the traffic.
func TestMetricsEndpoint(t *testing.T) {
	t.Parallel()
	if !sortedBuckets() {
		t.Fatal("latencyBuckets must be ascending")
	}
	f := newTestFixture(6)
	s := f.server(t, Config{})

	for i := 0; i < 5; i++ {
		if code, res, _ := doJSON(t, s.Handler(), "GET",
			"/estimate?deadline_ms=1000&q="+urlQuery(f.query), ""); code != 200 {
			t.Fatalf("warmup request %d failed: %d %+v", i, code, res)
		}
	}
	doJSON(t, s.Handler(), "GET", "/estimate", "") // one 400

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Result().Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text format 0.0.4", ct)
	}
	samples := parsePrometheus(t, rec.Body.String())

	for _, name := range requiredMetrics {
		found := false
		for series := range samples {
			if series == name || strings.HasPrefix(series, name+"{") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("required metric %q missing from /metrics", name)
		}
	}
	if got := samples[`condsel_requests_total{endpoint="estimate",code="200"}`]; got != 5 {
		t.Fatalf("200 counter = %v, want 5", got)
	}
	if got := samples[`condsel_requests_total{endpoint="estimate",code="400"}`]; got != 1 {
		t.Fatalf("400 counter = %v, want 1", got)
	}
	if got := samples[`condsel_responses_tier_total{endpoint="estimate",tier="full-dp"}`]; got != 5 {
		t.Fatalf("full-dp tier counter = %v, want 5", got)
	}
}

// TestMetricsClusterGauges: a configured Cluster source renders the
// distributed-tier series; without one they are absent.
func TestMetricsClusterGauges(t *testing.T) {
	t.Parallel()
	f := newTestFixture(6)
	s := f.server(t, Config{Cluster: func() ClusterCounters {
		return ClusterCounters{
			Nodes: 3, PeersAdmitted: 1, PeersMissing: 1, PeersTripped: 1,
			Epoch: 2, LocalGeneration: 7, MergedGeneration: 9,
			Replications: 4, ReplFailures: 2, FenceRejections: 1,
			Degraded: 5, Retries: 3, BreakerTrips: 1,
		}
	}})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	samples := parsePrometheus(t, rec.Body.String())
	for series, want := range map[string]float64{
		"condsel_cluster_nodes":                      3,
		`condsel_cluster_peers{state="admitted"}`:    1,
		`condsel_cluster_peers{state="missing"}`:     1,
		`condsel_cluster_peers{state="tripped"}`:     1,
		"condsel_cluster_epoch":                      2,
		"condsel_cluster_local_generation":           7,
		"condsel_cluster_merged_generation":          9,
		"condsel_cluster_replications_total":         4,
		"condsel_cluster_replication_failures_total": 2,
		"condsel_cluster_fence_rejections_total":     1,
		"condsel_cluster_degraded_total":             5,
		"condsel_cluster_retries_total":              3,
		"condsel_cluster_breaker_trips_total":        1,
	} {
		if got := samples[series]; got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}

	bare := f.server(t, Config{})
	rec = httptest.NewRecorder()
	bare.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), "condsel_cluster_") {
		t.Fatal("cluster series rendered with no Cluster source configured")
	}
}

func urlQuery(q string) string {
	r := strings.NewReplacer(" ", "%20", "=", "%3D", "<", "%3C", ">", "%3E")
	return r.Replace(q)
}

// stubEstimator answers at the admitted cap after a tier-dependent delay —
// a deterministic stand-in for "higher fidelity costs more".
type stubEstimator struct {
	delays [4]time.Duration
}

func (e *stubEstimator) Estimate(ctx context.Context, q *engine.Query, cfg robust.Config) (float64, robust.Provenance) {
	tier := cfg.MaxTier
	if d := e.delays[int(tier)]; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
		}
	}
	prov := robust.Provenance{Tier: tier, Generation: 1}
	if tier != robust.TierFullDP {
		prov.FallbackReason = fmt.Sprintf("stub capped at %s (%s)", tier, cfg.SkipReason)
	}
	return 42, prov
}
