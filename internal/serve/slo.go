package serve

import (
	"sort"
	"sync"
	"time"

	"condsel/internal/robust"
)

// Clock abstracts time.Now so the SLO controller's hysteresis is
// deterministic under test: production uses the real clock, tests drive a
// fake one and feed scripted latencies.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// SLOConfig tunes the tail-latency controller. The zero value of each field
// takes the default; TargetP99 <= 0 disables the controller entirely (the
// admitted tier stays TierFullDP).
type SLOConfig struct {
	// TargetP99 is the rolling-p99 latency objective.
	TargetP99 time.Duration
	// Window is the rolling sample window size (default 256).
	Window int
	// MinSamples is how many samples the window needs before any decision
	// (default max(Window/4, 16)). The window is cleared after every tier
	// change, so each step is judged on fresh evidence.
	MinSamples int
	// HoldDown is the minimum interval between consecutive tightening steps
	// (default 250ms) — one breach moves one rung, not a freefall.
	HoldDown time.Duration
	// HoldUp is how long p99 must stay below ReopenFraction·TargetP99
	// before one rung of fidelity is restored (default 1s). Re-opening is
	// deliberately slower than tightening.
	HoldUp time.Duration
	// ReopenFraction is the recovery threshold as a fraction of TargetP99
	// (default 0.5): hysteresis, so the controller does not oscillate
	// around the target.
	ReopenFraction float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 4
		if c.MinSamples < 16 {
			c.MinSamples = 16
		}
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.HoldDown <= 0 {
		c.HoldDown = 250 * time.Millisecond
	}
	if c.HoldUp <= 0 {
		c.HoldUp = time.Second
	}
	if c.ReopenFraction <= 0 || c.ReopenFraction >= 1 {
		c.ReopenFraction = 0.5
	}
	return c
}

// TierTransition records one controller decision, for tests and operators.
type TierTransition struct {
	At       time.Time
	From, To robust.Tier
	P99      time.Duration // the rolling p99 that triggered the move
}

// SLOController keeps a rolling latency window per endpoint group and
// adaptively caps the ladder tier admission may grant: when the rolling p99
// breaches the target, the admitted tier steps one rung down (cheaper, so
// the tail shrinks); when p99 stays below the reopen threshold for HoldUp,
// fidelity steps back up. Both directions carry hysteresis — HoldDown
// between tightenings, HoldUp plus a lower threshold before re-opening —
// so the controller converges instead of oscillating. Deterministic given a
// deterministic Clock and observation sequence.
type SLOController struct {
	cfg   SLOConfig
	clock Clock

	mu          sync.Mutex
	window      []time.Duration
	scratch     []time.Duration
	n, next     int
	tier        robust.Tier
	lastTighten time.Time
	calmSince   time.Time
	tightenings int64
	reopenings  int64
	transitions []TierTransition
}

// maxTransitions bounds the retained decision trace (oldest dropped).
const maxTransitions = 256

// NewSLOController returns a controller at TierFullDP. A nil clock selects
// the real one.
func NewSLOController(cfg SLOConfig, clock Clock) *SLOController {
	cfg = cfg.withDefaults()
	if clock == nil {
		clock = realClock{}
	}
	return &SLOController{
		cfg:     cfg,
		clock:   clock,
		window:  make([]time.Duration, cfg.Window),
		scratch: make([]time.Duration, cfg.Window),
	}
}

// Admitted returns the highest-fidelity tier the controller currently
// allows.
func (c *SLOController) Admitted() robust.Tier {
	if c == nil || c.cfg.TargetP99 <= 0 {
		return robust.TierFullDP
	}
	c.mu.Lock()
	t := c.tier
	c.mu.Unlock()
	return t
}

// Observe records one request's latency and re-evaluates the admitted tier.
func (c *SLOController) Observe(d time.Duration) {
	if c == nil || c.cfg.TargetP99 <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	c.window[c.next] = d
	c.next = (c.next + 1) % len(c.window)
	if c.n < len(c.window) {
		c.n++
	}
	if c.n < c.cfg.MinSamples {
		return
	}
	p99 := c.p99Locked()
	now := c.clock.Now()
	switch {
	case p99 > c.cfg.TargetP99:
		c.calmSince = time.Time{}
		if c.tier < robust.TierNoSIT &&
			(c.lastTighten.IsZero() || now.Sub(c.lastTighten) >= c.cfg.HoldDown) {
			c.stepLocked(c.tier+1, p99, now)
			c.lastTighten = now
			c.tightenings++
		}
	case c.tier > robust.TierFullDP &&
		float64(p99) <= c.cfg.ReopenFraction*float64(c.cfg.TargetP99):
		if c.calmSince.IsZero() {
			c.calmSince = now
		} else if now.Sub(c.calmSince) >= c.cfg.HoldUp {
			c.stepLocked(c.tier-1, p99, now)
			c.reopenings++
			c.calmSince = now // a further re-opening needs its own calm period
		}
	default:
		c.calmSince = time.Time{}
	}
}

// stepLocked moves the admitted tier and clears the window so the next
// decision rests on evidence gathered under the new tier.
func (c *SLOController) stepLocked(to robust.Tier, p99 time.Duration, now time.Time) {
	c.transitions = append(c.transitions, TierTransition{At: now, From: c.tier, To: to, P99: p99})
	if len(c.transitions) > maxTransitions {
		c.transitions = c.transitions[len(c.transitions)-maxTransitions:]
	}
	c.tier = to
	c.n, c.next = 0, 0
}

// p99Locked computes the window's p99 by nearest rank over a scratch copy.
func (c *SLOController) p99Locked() time.Duration {
	s := c.scratch[:c.n]
	if c.n == len(c.window) {
		copy(s, c.window)
	} else {
		copy(s, c.window[:c.n])
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(0.99*float64(len(s)-1))]
}

// SLOStats is a point-in-time snapshot of the controller's counters.
type SLOStats struct {
	AdmittedTier robust.Tier
	Tightenings  int64
	Reopenings   int64
	WindowFill   int
}

// Stats snapshots the controller.
func (c *SLOController) Stats() SLOStats {
	if c == nil {
		return SLOStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return SLOStats{AdmittedTier: c.tier, Tightenings: c.tightenings, Reopenings: c.reopenings, WindowFill: c.n}
}

// Transitions returns a copy of the retained decision trace in order.
func (c *SLOController) Transitions() []TierTransition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TierTransition(nil), c.transitions...)
}
