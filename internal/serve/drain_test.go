package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"condsel/internal/engine"
	"condsel/internal/robust"
)

// blockingEstimator parks inside Estimate until released, signalling entry —
// the probe that lets the drain test hold a request genuinely in flight.
type blockingEstimator struct {
	entered chan struct{}
	release chan struct{}
}

func (e *blockingEstimator) Estimate(ctx context.Context, q *engine.Query, cfg robust.Config) (float64, robust.Provenance) {
	e.entered <- struct{}{}
	select {
	case <-e.release:
	case <-ctx.Done():
	}
	return 7, robust.Provenance{Tier: cfg.MaxTier, Generation: 1}
}

// TestGracefulDrain exercises the full shutdown sequence over a real
// listener: a request caught in flight completes with 200, requests arriving
// after BeginDrain get 503 + Retry-After, Shutdown closes the listener, and
// no goroutines are left behind.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	f := newTestFixture(9)
	stub := &blockingEstimator{entered: make(chan struct{}), release: make(chan struct{})}
	s := f.server(t, Config{
		Estimator:       stub,
		MaxConcurrent:   2,
		DefaultDeadline: 5 * time.Second,
		DrainDeadline:   5 * time.Second,
		RetryAfter:      2 * time.Second,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Put one request genuinely in flight (parked inside the estimator).
	inFlight := make(chan EstimateResult, 1)
	inFlightCode := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/estimate?q=" + urlQuery(f.query))
		if err != nil {
			inFlightCode <- -1
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var res EstimateResult
		_ = json.Unmarshal(body, &res)
		inFlightCode <- resp.StatusCode
		inFlight <- res
	}()
	select {
	case <-stub.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the estimator")
	}

	s.BeginDrain()

	// New work is refused with 503 and a Retry-After hint.
	resp, err := http.Get(base + "/estimate?q=" + urlQuery(f.query))
	if err != nil {
		t.Fatalf("post-drain request: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	var refused EstimateResult
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &refused); err != nil || refused.Error == "" {
		t.Fatalf("503 body %q not a JSON error (%v)", body, err)
	}

	// Readiness reports draining; liveness stays up.
	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// Release the parked request, then shut down: Shutdown must wait for it.
	close(stub.release)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code := <-inFlightCode; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if res := <-inFlight; res.Cardinality != 7 {
		t.Fatalf("in-flight result = %+v, want the stub's answer", res)
	}

	// The listener is closed: Serve returned ErrServerClosed and new dials
	// are refused.
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if conn, err := net.DialTimeout("tcp", ln.Addr().String(), 500*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after Shutdown")
	}

	// No goroutine leaks: the count settles back to (about) where it began.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrainDeadlineExpires: a request that outlives the drain deadline makes
// Shutdown return an error instead of hanging forever.
func TestDrainDeadlineExpires(t *testing.T) {
	t.Parallel()
	f := newTestFixture(10)
	stub := &blockingEstimator{entered: make(chan struct{}, 1), release: make(chan struct{})}
	s := f.server(t, Config{
		Estimator:       stub,
		DefaultDeadline: 30 * time.Second, // the request itself would run long
		DrainDeadline:   50 * time.Millisecond,
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/estimate?q="+urlQuery(f.query), nil))
	}()
	<-stub.entered

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("Shutdown = %v, want drain-deadline error", err)
	}
	close(stub.release)
	<-done
}
