package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"condsel/internal/robust"
)

// latencyBuckets are the upper bounds (seconds) of the request-duration
// histogram — fixed at compile time so observation is a few atomic adds.
var latencyBuckets = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// histogram is a lock-free Prometheus-style cumulative histogram: per-bucket
// counts plus a sum (in nanoseconds, to stay integral) and total count.
type histogram struct {
	buckets [len(latencyBuckets)]atomic.Int64
	sumNs   atomic.Int64
	count   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			h.buckets[i].Add(1)
		}
	}
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// endpoints and statusClasses enumerate the label values minted by the
// handlers; metrics storage is a fixed matrix indexed by them, so the hot
// path never touches a map or a lock.
var endpoints = []string{"estimate", "batch"}

const (
	epEstimate = iota
	epBatch
	numEndpoints
)

var statusCodes = [...]int{200, 400, 503}

const numTiers = int(robust.TierNoSIT) + 1

// metrics is the server-wide counter set backing /metrics. All fields are
// atomics: observation is wait-free, exposition reads a consistent-enough
// snapshot (Prometheus semantics tolerate per-series skew).
type metrics struct {
	requests  [numEndpoints][len(statusCodes) + 1]atomic.Int64 // last column: other
	tiers     [numEndpoints][numTiers]atomic.Int64
	latency   [numEndpoints][numTiers]histogram
	shed      [2]atomic.Int64 // ShedQueueFull, ShedDeadline
	drained   atomic.Int64    // requests refused because the server is draining
	queueWait histogram
}

func endpointIndex(ep string) int {
	if ep == "batch" {
		return epBatch
	}
	return epEstimate
}

func (m *metrics) observeRequest(ep string, code int, tier robust.Tier, d time.Duration) {
	e := endpointIndex(ep)
	ci := len(statusCodes)
	for i, c := range statusCodes {
		if c == code {
			ci = i
			break
		}
	}
	m.requests[e][ci].Add(1)
	if code == 200 {
		t := int(tier)
		if t < 0 || t >= numTiers {
			t = numTiers - 1
		}
		m.tiers[e][t].Add(1)
		m.latency[e][t].observe(d)
	}
}

func (m *metrics) observeShed(cause string) {
	if cause == ShedQueueFull {
		m.shed[0].Add(1)
	} else {
		m.shed[1].Add(1)
	}
}

// writeMetrics renders the full exposition in Prometheus text format 0.0.4.
// Gauges sampled from the wider system (limiter, SLO controller, caches,
// pool, lifecycle) are read through the snapshot accessors those subsystems
// expose, so scraping never contends with the estimation hot path beyond a
// single short lock per subsystem.
func (s *Server) writeMetrics(w io.Writer) {
	m := &s.m

	fmt.Fprintf(w, "# HELP condsel_requests_total Requests by endpoint and status code.\n# TYPE condsel_requests_total counter\n")
	for e, ep := range endpoints {
		for i, c := range statusCodes {
			fmt.Fprintf(w, "condsel_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, m.requests[e][i].Load())
		}
		fmt.Fprintf(w, "condsel_requests_total{endpoint=%q,code=\"other\"} %d\n", ep, m.requests[e][len(statusCodes)].Load())
	}

	fmt.Fprintf(w, "# HELP condsel_responses_tier_total Successful responses by ladder tier that answered.\n# TYPE condsel_responses_tier_total counter\n")
	for e, ep := range endpoints {
		for t := 0; t < numTiers; t++ {
			fmt.Fprintf(w, "condsel_responses_tier_total{endpoint=%q,tier=%q} %d\n", ep, robust.Tier(t).String(), m.tiers[e][t].Load())
		}
	}

	fmt.Fprintf(w, "# HELP condsel_request_duration_seconds Estimation latency by endpoint and answering tier.\n# TYPE condsel_request_duration_seconds histogram\n")
	for e, ep := range endpoints {
		for t := 0; t < numTiers; t++ {
			h := &m.latency[e][t]
			if h.count.Load() == 0 {
				continue
			}
			tier := robust.Tier(t).String()
			for i, ub := range latencyBuckets {
				fmt.Fprintf(w, "condsel_request_duration_seconds_bucket{endpoint=%q,tier=%q,le=%q} %d\n",
					ep, tier, formatFloat(ub), h.buckets[i].Load())
			}
			fmt.Fprintf(w, "condsel_request_duration_seconds_bucket{endpoint=%q,tier=%q,le=\"+Inf\"} %d\n", ep, tier, h.count.Load())
			fmt.Fprintf(w, "condsel_request_duration_seconds_sum{endpoint=%q,tier=%q} %s\n", ep, tier,
				formatFloat(float64(h.sumNs.Load())/1e9))
			fmt.Fprintf(w, "condsel_request_duration_seconds_count{endpoint=%q,tier=%q} %d\n", ep, tier, h.count.Load())
		}
	}

	fmt.Fprintf(w, "# HELP condsel_queue_wait_seconds Time requests spent in the admission queue.\n# TYPE condsel_queue_wait_seconds histogram\n")
	for i, ub := range latencyBuckets {
		fmt.Fprintf(w, "condsel_queue_wait_seconds_bucket{le=%q} %d\n", formatFloat(ub), m.queueWait.buckets[i].Load())
	}
	fmt.Fprintf(w, "condsel_queue_wait_seconds_bucket{le=\"+Inf\"} %d\n", m.queueWait.count.Load())
	fmt.Fprintf(w, "condsel_queue_wait_seconds_sum %s\n", formatFloat(float64(m.queueWait.sumNs.Load())/1e9))
	fmt.Fprintf(w, "condsel_queue_wait_seconds_count %d\n", m.queueWait.count.Load())

	fmt.Fprintf(w, "# HELP condsel_shed_total Admission sheds by cause (shed requests still get an answer from a cheaper tier).\n# TYPE condsel_shed_total counter\n")
	fmt.Fprintf(w, "condsel_shed_total{cause=%q} %d\n", ShedQueueFull, m.shed[0].Load())
	fmt.Fprintf(w, "condsel_shed_total{cause=%q} %d\n", ShedDeadline, m.shed[1].Load())

	fmt.Fprintf(w, "# HELP condsel_drain_refused_total Requests refused with 503 because the server was draining.\n# TYPE condsel_drain_refused_total counter\n")
	fmt.Fprintf(w, "condsel_drain_refused_total %d\n", m.drained.Load())

	fmt.Fprintf(w, "# HELP condsel_queue_depth Requests currently waiting for an admission slot.\n# TYPE condsel_queue_depth gauge\n")
	fmt.Fprintf(w, "condsel_queue_depth %d\n", s.limiter.QueueDepth())
	fmt.Fprintf(w, "# HELP condsel_inflight Admission slots currently held.\n# TYPE condsel_inflight gauge\n")
	fmt.Fprintf(w, "condsel_inflight %d\n", s.limiter.InFlight())
	fmt.Fprintf(w, "# HELP condsel_capacity Admission slot capacity.\n# TYPE condsel_capacity gauge\n")
	fmt.Fprintf(w, "condsel_capacity %d\n", s.limiter.Capacity())

	slo := s.slo.Stats()
	fmt.Fprintf(w, "# HELP condsel_slo_admitted_tier Highest-fidelity ladder tier the SLO controller currently admits (0=full-dp .. 3=no-sit).\n# TYPE condsel_slo_admitted_tier gauge\n")
	fmt.Fprintf(w, "condsel_slo_admitted_tier %d\n", int(slo.AdmittedTier))
	fmt.Fprintf(w, "# HELP condsel_slo_tightenings_total SLO tier tightenings (p99 breached target).\n# TYPE condsel_slo_tightenings_total counter\n")
	fmt.Fprintf(w, "condsel_slo_tightenings_total %d\n", slo.Tightenings)
	fmt.Fprintf(w, "# HELP condsel_slo_reopenings_total SLO tier re-openings (sustained calm).\n# TYPE condsel_slo_reopenings_total counter\n")
	fmt.Fprintf(w, "condsel_slo_reopenings_total %d\n", slo.Reopenings)

	if s.cfg.Cache != nil {
		st := s.cfg.Cache.Stats()
		fmt.Fprintf(w, "# HELP condsel_selcache_hits_total Cross-query selectivity cache hits.\n# TYPE condsel_selcache_hits_total counter\n")
		fmt.Fprintf(w, "condsel_selcache_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# HELP condsel_selcache_misses_total Cross-query selectivity cache misses.\n# TYPE condsel_selcache_misses_total counter\n")
		fmt.Fprintf(w, "condsel_selcache_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# HELP condsel_selcache_evictions_total Cross-query selectivity cache evictions.\n# TYPE condsel_selcache_evictions_total counter\n")
		fmt.Fprintf(w, "condsel_selcache_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(w, "# HELP condsel_selcache_entries Current selectivity cache entries.\n# TYPE condsel_selcache_entries gauge\n")
		fmt.Fprintf(w, "condsel_selcache_entries %d\n", st.Entries)
		fmt.Fprintf(w, "# HELP condsel_selcache_capacity Selectivity cache capacity.\n# TYPE condsel_selcache_capacity gauge\n")
		fmt.Fprintf(w, "condsel_selcache_capacity %d\n", st.Capacity)
	}

	if s.cfg.Pool != nil {
		if p := s.cfg.Pool(); p != nil {
			sits, quarantined, gen := p.HealthCounts()
			fmt.Fprintf(w, "# HELP condsel_pool_sits SIT statistics currently in the pool.\n# TYPE condsel_pool_sits gauge\n")
			fmt.Fprintf(w, "condsel_pool_sits %d\n", sits)
			fmt.Fprintf(w, "# HELP condsel_pool_quarantined SITs currently quarantined by validation.\n# TYPE condsel_pool_quarantined gauge\n")
			fmt.Fprintf(w, "condsel_pool_quarantined %d\n", quarantined)
			fmt.Fprintf(w, "# HELP condsel_pool_generation Pool content generation stamp.\n# TYPE condsel_pool_generation gauge\n")
			fmt.Fprintf(w, "condsel_pool_generation %d\n", gen)
		}
	}

	if s.cfg.Lifecycle != nil {
		lc := s.cfg.Lifecycle.CountersSnapshot()
		fmt.Fprintf(w, "# HELP condsel_lifecycle_statistics Managed statistics by lifecycle state.\n# TYPE condsel_lifecycle_statistics gauge\n")
		for _, kv := range []struct {
			state string
			n     int
		}{{"healthy", lc.Healthy}, {"stale", lc.Stale}, {"rebuilding", lc.Rebuilding}, {"parked", lc.Parked}} {
			fmt.Fprintf(w, "condsel_lifecycle_statistics{state=%q} %d\n", kv.state, kv.n)
		}
		fmt.Fprintf(w, "# HELP condsel_lifecycle_rebuilds_total Completed statistics rebuilds.\n# TYPE condsel_lifecycle_rebuilds_total counter\n")
		fmt.Fprintf(w, "condsel_lifecycle_rebuilds_total %d\n", lc.Rebuilds)
		fmt.Fprintf(w, "# HELP condsel_lifecycle_failures_total Failed statistics rebuilds.\n# TYPE condsel_lifecycle_failures_total counter\n")
		fmt.Fprintf(w, "condsel_lifecycle_failures_total %d\n", lc.Failures)
		fmt.Fprintf(w, "# HELP condsel_lifecycle_swaps_total Estimator epoch hot-swaps.\n# TYPE condsel_lifecycle_swaps_total counter\n")
		fmt.Fprintf(w, "condsel_lifecycle_swaps_total %d\n", lc.Swaps)
		fmt.Fprintf(w, "# HELP condsel_lifecycle_dropped_observations_total Feedback observations dropped (stale generation or full queue).\n# TYPE condsel_lifecycle_dropped_observations_total counter\n")
		fmt.Fprintf(w, "condsel_lifecycle_dropped_observations_total %d\n", lc.DroppedObs)
		fmt.Fprintf(w, "# HELP condsel_lifecycle_checkpoint_seq Sequence number of the last SITSNAP checkpoint written.\n# TYPE condsel_lifecycle_checkpoint_seq gauge\n")
		fmt.Fprintf(w, "condsel_lifecycle_checkpoint_seq %d\n", lc.CheckpointSeq)
		fmt.Fprintf(w, "# HELP condsel_lifecycle_corrupt_snapshots Corrupt snapshot files detected at recovery.\n# TYPE condsel_lifecycle_corrupt_snapshots gauge\n")
		fmt.Fprintf(w, "condsel_lifecycle_corrupt_snapshots %d\n", lc.CorruptSnapshots)
	}

	if s.cfg.Cluster != nil {
		cc := s.cfg.Cluster()
		fmt.Fprintf(w, "# HELP condsel_cluster_nodes Cluster membership size.\n# TYPE condsel_cluster_nodes gauge\n")
		fmt.Fprintf(w, "condsel_cluster_nodes %d\n", cc.Nodes)
		fmt.Fprintf(w, "# HELP condsel_cluster_peers Peer shards by replication state.\n# TYPE condsel_cluster_peers gauge\n")
		for _, kv := range []struct {
			state string
			n     int
		}{{"admitted", cc.PeersAdmitted}, {"missing", cc.PeersMissing}, {"tripped", cc.PeersTripped}} {
			fmt.Fprintf(w, "condsel_cluster_peers{state=%q} %d\n", kv.state, kv.n)
		}
		fmt.Fprintf(w, "# HELP condsel_cluster_epoch This node's rebuild epoch (fencing major component).\n# TYPE condsel_cluster_epoch gauge\n")
		fmt.Fprintf(w, "condsel_cluster_epoch %d\n", cc.Epoch)
		fmt.Fprintf(w, "# HELP condsel_cluster_local_generation Local shard content generation.\n# TYPE condsel_cluster_local_generation gauge\n")
		fmt.Fprintf(w, "condsel_cluster_local_generation %d\n", cc.LocalGeneration)
		fmt.Fprintf(w, "# HELP condsel_cluster_merged_generation Merged (local+replicas) pool content generation.\n# TYPE condsel_cluster_merged_generation gauge\n")
		fmt.Fprintf(w, "condsel_cluster_merged_generation %d\n", cc.MergedGeneration)
		fmt.Fprintf(w, "# HELP condsel_cluster_replications_total Peer shard frames admitted.\n# TYPE condsel_cluster_replications_total counter\n")
		fmt.Fprintf(w, "condsel_cluster_replications_total %d\n", cc.Replications)
		fmt.Fprintf(w, "# HELP condsel_cluster_replication_failures_total Replicate calls that exhausted their retries.\n# TYPE condsel_cluster_replication_failures_total counter\n")
		fmt.Fprintf(w, "condsel_cluster_replication_failures_total %d\n", cc.ReplFailures)
		fmt.Fprintf(w, "# HELP condsel_cluster_fence_rejections_total Frames refused by epoch/generation fencing.\n# TYPE condsel_cluster_fence_rejections_total counter\n")
		fmt.Fprintf(w, "condsel_cluster_fence_rejections_total %d\n", cc.FenceRejections)
		fmt.Fprintf(w, "# HELP condsel_cluster_degraded_total Estimates answered from the local ladder because a peer shard was unreachable.\n# TYPE condsel_cluster_degraded_total counter\n")
		fmt.Fprintf(w, "condsel_cluster_degraded_total %d\n", cc.Degraded)
		fmt.Fprintf(w, "# HELP condsel_cluster_retries_total Shard fetch retries beyond first attempts.\n# TYPE condsel_cluster_retries_total counter\n")
		fmt.Fprintf(w, "condsel_cluster_retries_total %d\n", cc.Retries)
		fmt.Fprintf(w, "# HELP condsel_cluster_breaker_trips_total Cumulative per-peer breaker trips.\n# TYPE condsel_cluster_breaker_trips_total counter\n")
		fmt.Fprintf(w, "condsel_cluster_breaker_trips_total %d\n", cc.BreakerTrips)
	}
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// representation that round-trips, no exponent for these magnitudes.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// sortedBuckets is a compile-time-ish guard used by tests; exposition relies
// on latencyBuckets being ascending.
func sortedBuckets() bool { return sort.Float64sAreSorted(latencyBuckets[:]) }
