package robust

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestMaxTierSkipsHigherRungs: capping the admitted tier enters the ladder
// at the cap, records every skipped rung with the skip reason, and still
// answers in range.
func TestMaxTierSkipsHigherRungs(t *testing.T) {
	t.Parallel()
	f := newFixture(11)
	cases := []struct {
		max     Tier
		skipped []string
	}{
		{TierBudgetedDP, []string{"full-dp: skipped"}},
		{TierGVM, []string{"full-dp: skipped", "budgeted-dp: skipped"}},
		{TierNoSIT, []string{"full-dp: skipped", "budgeted-dp: skipped", "gvm: skipped"}},
	}
	for _, tc := range cases {
		lad := f.ladder(Config{MaxTier: tc.max, SkipReason: "admission-shed"})
		sel, prov := lad.Selectivity(context.Background(), f.query, f.query.All())
		checkValue(t, "capped sel", sel)
		if sel > 1 {
			t.Fatalf("MaxTier=%v: sel = %v > 1", tc.max, sel)
		}
		if prov.Tier < tc.max {
			t.Fatalf("MaxTier=%v answered above the cap: %v", tc.max, prov.Tier)
		}
		for _, want := range tc.skipped {
			if !strings.Contains(prov.FallbackReason, want) {
				t.Fatalf("MaxTier=%v reason %q missing %q", tc.max, prov.FallbackReason, want)
			}
		}
		if !strings.Contains(prov.FallbackReason, "admission-shed") {
			t.Fatalf("MaxTier=%v reason %q does not carry the skip reason", tc.max, prov.FallbackReason)
		}
	}
}

// TestMaxTierZeroIsBitIdentical: the zero config still runs the full ladder
// from the top — MaxTier plumbing must not perturb the default path.
func TestMaxTierZeroIsBitIdentical(t *testing.T) {
	t.Parallel()
	f := newFixture(12)
	want, provWant := f.ladder(Config{}).Selectivity(context.Background(), f.query, f.query.All())
	got, provGot := f.ladder(Config{MaxTier: TierFullDP}).Selectivity(context.Background(), f.query, f.query.All())
	if got != want || provGot != provWant {
		t.Fatalf("explicit TierFullDP diverged: %v (%+v) vs %v (%+v)", got, provGot, want, provWant)
	}
	if provWant.Tier != TierFullDP {
		t.Fatalf("healthy fixture did not answer at full-dp: %+v", provWant)
	}
}

// TestConfigCap: Cap only ever lowers fidelity and records the new reason.
func TestConfigCap(t *testing.T) {
	t.Parallel()
	c := Config{MaxTier: TierBudgetedDP, SkipReason: "deadline-mapped"}
	if got := c.Cap(TierGVM, "slo-capped"); got.MaxTier != TierGVM || got.SkipReason != "slo-capped" {
		t.Fatalf("Cap down = %+v", got)
	}
	if got := c.Cap(TierFullDP, "slo-capped"); got != c {
		t.Fatalf("Cap up must be a no-op, got %+v", got)
	}
}

// TestBudgetForDeadlineBands pins the mapping table documented in DESIGN.md.
func TestBudgetForDeadlineBands(t *testing.T) {
	t.Parallel()
	cases := []struct {
		remaining time.Duration
		tier      Tier
		budget    int
	}{
		{time.Second, TierFullDP, 0},
		{FullBudgetDeadline, TierFullDP, 0},
		{100 * time.Millisecond, TierFullDP, TightNodeBudget},
		{TightBudgetDeadline, TierFullDP, TightNodeBudget},
		{20 * time.Millisecond, TierBudgetedDP, 0},
		{ChainDeadline, TierBudgetedDP, 0},
		{5 * time.Millisecond, TierGVM, 0},
		{GVMDeadline, TierGVM, 0},
		{time.Millisecond, TierNoSIT, 0},
		{0, TierNoSIT, 0},
		{-time.Second, TierNoSIT, 0},
	}
	prev := TierFullDP
	for _, tc := range cases {
		cfg := BudgetForDeadline(tc.remaining)
		if cfg.MaxTier != tc.tier || cfg.NodeBudget != tc.budget {
			t.Fatalf("BudgetForDeadline(%v) = {tier %v, budget %d}, want {%v, %d}",
				tc.remaining, cfg.MaxTier, cfg.NodeBudget, tc.tier, tc.budget)
		}
		if cfg.SkipReason != "deadline-mapped" {
			t.Fatalf("BudgetForDeadline(%v).SkipReason = %q", tc.remaining, cfg.SkipReason)
		}
		if cfg.MaxTier < prev {
			t.Fatalf("mapping not monotone at %v", tc.remaining)
		}
		prev = cfg.MaxTier
	}
}
