// Package robust implements the degradation ladder: fault-tolerant
// selectivity and cardinality estimation that always answers.
//
// The full getSelectivity DP (internal/core) gives the most accurate
// decomposition but its enumeration is exponential in the worst case, its
// statistics can be corrupt, and — in a production optimizer — an estimate
// that misses its latency envelope is as useless as no estimate. The ladder
// arranges four estimation tiers by fidelity and runs them top-down, each
// under deadline and panic isolation, descending one rung whenever a tier
// aborts, panics, or produces an out-of-range value:
//
//	TierFullDP      the Figure 3 DP, under context deadline + node budget
//	TierBudgetedDP  one greedy decomposition chain over the same factor
//	                space (O(n²) factor approximations, no enumeration)
//	TierGVM         greedy view matching (Bruno & Chaudhuri '02), deadline-
//	                polled between greedy rounds
//	TierNoSIT       attribute-value independence over base histograms
//
// TierNoSIT cannot block (no enumeration, no SIT matching) and is itself
// guarded; if even it fails, a closed-form System R fallback product answers.
// Every answer carries a Provenance saying which tier produced it and why
// the tiers above it fell through. When nothing goes wrong — no deadline, no
// faults, healthy statistics — TierFullDP's answer is bit-identical to the
// plain estimator's, because budgets only ever abort, never alter.
package robust

import (
	"context"
	"fmt"
	"math"

	"condsel/internal/core"
	"condsel/internal/engine"
	"condsel/internal/gvm"
)

// Tier identifies which estimation tier produced an answer, in descending
// fidelity order.
type Tier uint8

const (
	// TierFullDP is the full getSelectivity dynamic program.
	TierFullDP Tier = iota
	// TierBudgetedDP is the greedy-chain restriction of the DP.
	TierBudgetedDP
	// TierGVM is greedy view matching.
	TierGVM
	// TierNoSIT is the independence estimate over base histograms (also
	// reported when even that fails and the closed-form floor answers).
	TierNoSIT
)

// String names the tier as reported in provenance and benchmarks.
func (t Tier) String() string {
	switch t {
	case TierFullDP:
		return "full-dp"
	case TierBudgetedDP:
		return "budgeted-dp"
	case TierGVM:
		return "gvm"
	case TierNoSIT:
		return "no-sit"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// Provenance records how an estimate was produced.
type Provenance struct {
	// Tier is the rung that answered.
	Tier Tier
	// FallbackReason concatenates, per abandoned rung, why it fell through
	// ("" when TierFullDP answered).
	FallbackReason string
	// Generation is the statistics-pool content stamp the estimate was
	// produced against (sit.Pool.Generation at the start of the ladder).
	// Feedback consumers — the lifecycle manager's drift detector — use it
	// to discard observations computed against a retired pool epoch instead
	// of mis-attributing their error to the statistics of the current one.
	Generation uint64
}

// DefaultNodeBudget caps the full DP's memo-miss nodes when Config leaves
// NodeBudget zero. The DP visits at most 2ⁿ nodes per query; this default is
// far above any workload query in this repository (n ≤ 17 components-wise)
// yet bounds a pathological enumeration to well under a second.
const DefaultNodeBudget = 200_000

// Config tunes the ladder.
type Config struct {
	// NodeBudget caps TierFullDP's DP nodes: 0 means DefaultNodeBudget,
	// negative means unlimited.
	NodeBudget int

	// MaxTier is the highest-fidelity tier the ladder may attempt; rungs
	// above it are skipped outright, with SkipReason recorded per skipped
	// rung in the answer's FallbackReason. The zero value (TierFullDP)
	// admits the whole ladder. A service layer uses this to shed load by
	// degrading fidelity instead of erroring: an overloaded or deadline-
	// starved request enters the ladder at a rung cheap enough to answer
	// within what remains of its budget.
	MaxTier Tier

	// SkipReason says why tiers above MaxTier were skipped (e.g.
	// "deadline-mapped", "slo-capped", "admission-shed"). Empty selects
	// "capped".
	SkipReason string
}

// RemoteUnavailablePrefix opens every provenance reason recorded when a
// remote statistics shard could not be reached and the local ladder
// answered instead; CI greps for it when asserting that every degraded
// answer under a partition carries provenance.
const RemoteUnavailablePrefix = "remote-shard-unavailable"

// RemoteUnavailableReason formats the Cap reason for an unreachable remote
// shard: `remote-shard-unavailable: <peer>/<cause>`.
func RemoteUnavailableReason(peer, cause string) string {
	return RemoteUnavailablePrefix + ": " + peer + "/" + cause
}

func (c Config) skipReason() string {
	if c.SkipReason == "" {
		return "capped"
	}
	return c.SkipReason
}

// Cap lowers the config's admitted tier to t when t is below the current
// MaxTier, recording reason for the skipped rungs. Capping never raises
// fidelity: a config already restricted further is returned unchanged.
func (c Config) Cap(t Tier, reason string) Config {
	if t > c.MaxTier {
		c.MaxTier = t
		c.SkipReason = reason
	}
	return c
}

func (c Config) nodeBudget() int {
	if c.NodeBudget == 0 {
		return DefaultNodeBudget
	}
	if c.NodeBudget < 0 {
		return 0 // core: 0 = unlimited
	}
	return c.NodeBudget
}

// Estimator runs the degradation ladder over a configured core estimator.
// It is safe for concurrent use whenever the underlying estimator is.
type Estimator struct {
	Core *core.Estimator
	GVM  *gvm.Estimator
	Cfg  Config
}

// New returns a ladder over the core estimator (the GVM tier is derived
// from the same catalog and pool).
func New(e *core.Estimator, cfg Config) *Estimator {
	return &Estimator{Core: e, GVM: gvm.NewEstimator(e.Cat, e.Pool), Cfg: cfg}
}

// Selectivity estimates Sel(set) for the query through the ladder. The
// context bounds the expensive tiers (nil means no deadline); the returned
// selectivity is always finite and in [0,1], whatever fails underneath.
func (e *Estimator) Selectivity(ctx context.Context, q *engine.Query, set engine.PredSet) (float64, Provenance) {
	gen := e.Core.Pool.Generation()
	var fall string

	// Tier 1: full DP under deadline + node budget. The selectivity is
	// copied out before Release — Results live in the run's arenas and are
	// invalid once the run returns to the pool.
	if e.Cfg.MaxTier > TierFullDP {
		fall = "full-dp: skipped (" + e.Cfg.skipReason() + ")"
	} else {
		r := e.Core.NewBudgetedRun(ctx, q, e.Cfg.nodeBudget())
		res, reason := r.SelectivityGuarded(set)
		var tier1Sel float64
		if reason == "" {
			tier1Sel = res.Sel
		}
		r.Release()
		if reason == "" {
			return tier1Sel, Provenance{Tier: TierFullDP, Generation: gen}
		}
		fall = "full-dp: " + reason
	}

	// Tier 2: greedy chain on a fresh run (the aborted run's memo may hold
	// poisoned partial results — Release wipes the memo, so pooling the
	// aborted run above is safe), same deadline, no node budget — the
	// chain's O(n²) factor count bounds it structurally.
	if e.Cfg.MaxTier > TierBudgetedDP {
		fall += "; budgeted-dp: skipped (" + e.Cfg.skipReason() + ")"
	} else {
		r2 := e.Core.NewBudgetedRun(ctx, q, 0)
		//lint:ignore ctxflow the run carries ctx from NewBudgetedRun and polls its deadline between factors; the transitive sleep is the SlowFactor fault-injection point, active only under the faults harness
		sel, _, reason := r2.GreedyChainGuarded(set)
		r2.Release()
		if reason == "" {
			return sel, Provenance{Tier: TierBudgetedDP, FallbackReason: fall, Generation: gen}
		}
		fall += "; budgeted-dp: " + reason
	}

	// Tier 3: greedy view matching, deadline-polled between rounds.
	if e.Cfg.MaxTier > TierGVM {
		fall += "; gvm: skipped (" + e.Cfg.skipReason() + ")"
	} else {
		sel, reason := e.gvmGuarded(ctx, q, set)
		if reason == "" {
			return sel, Provenance{Tier: TierGVM, FallbackReason: fall, Generation: gen}
		}
		fall += "; gvm: " + reason
	}

	// Tier 4: independence over base histograms — no deadline: this tier
	// must answer, and it performs no search to bound. MaxTier never skips
	// it; the ladder's availability contract ends here, not at the floor.
	r4 := e.Core.NewRun(q)
	sel, reason := r4.IndependenceGuarded(set)
	r4.Release()
	if reason == "" {
		return sel, Provenance{Tier: TierNoSIT, FallbackReason: fall, Generation: gen}
	}
	fall += "; no-sit: " + reason

	// Closed-form floor: the System R fallback product. Pure arithmetic
	// over in-range constants — cannot fail, cannot leave [0,1].
	return floorSelectivity(q, set), Provenance{Tier: TierNoSIT, FallbackReason: fall + "; floor", Generation: gen}
}

// Cardinality estimates the cardinality of the full query through the
// ladder: Sel(all) · |tables^×|. The result is always finite and ≥ 0.
func (e *Estimator) Cardinality(ctx context.Context, q *engine.Query) (float64, Provenance) {
	sel, prov := e.Selectivity(ctx, q, q.All())
	tables := engine.PredsTables(q.Cat, q.Preds, q.All())
	card := sel * q.Cat.CrossSize(tables)
	if math.IsNaN(card) || math.IsInf(card, 0) || card < 0 {
		// Unreachable while Selectivity keeps its contract (sel ∈ [0,1] and
		// CrossSize is finite ≥ 0), but cardinality is the value optimizers
		// consume, so it gets its own last-line guard.
		prov.FallbackReason += "; cardinality clamped"
		return 0, prov
	}
	return card, prov
}

// gvmGuarded runs the GVM tier with panic isolation and range validation.
func (e *Estimator) gvmGuarded(ctx context.Context, q *engine.Query, set engine.PredSet) (sel float64, fallbackReason string) {
	defer core.RecoverFallbackReason(&fallbackReason)
	s, err := e.GVM.EstimateSelectivityCtx(ctx, q, set)
	if err != nil {
		return 0, "deadline: " + err.Error()
	}
	if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 || s > 1 {
		return 0, fmt.Sprintf("selectivity %v outside [0,1]", s)
	}
	return s, ""
}

// floorSelectivity is the ladder's closed-form last answer: the classic
// System R magic-constant product (0.1 per filter, 0.01 per join).
func floorSelectivity(q *engine.Query, set engine.PredSet) float64 {
	sel := 1.0
	for _, i := range set.Indices() {
		if q.Preds[i].IsJoin() {
			sel *= core.FallbackJoinSelectivity
		} else {
			sel *= core.FallbackFilterSelectivity
		}
	}
	return sel
}
