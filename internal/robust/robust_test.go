package robust

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"condsel/internal/core"
	"condsel/internal/engine"
	"condsel/internal/faults"
	"condsel/internal/sit"
)

// fixture builds the repository's standard 3-table correlated star and its
// 4-predicate query (two joins, two filters).
type fixture struct {
	cat   *engine.Catalog
	query *engine.Query
	pool  *sit.Pool
}

func newFixture(seed int64) *fixture {
	rng := rand.New(rand.NewSource(seed))
	cat := engine.NewCatalog()
	const nCustomers, nOrders = 50, 250

	cid := make([]int64, nCustomers)
	nation := make([]int64, nCustomers)
	for i := range cid {
		cid[i] = int64(i)
		if rng.Float64() < 0.8 {
			nation[i] = 1
		} else {
			nation[i] = int64(2 + rng.Intn(20))
		}
	}
	cat.MustAddTable(&engine.Table{Name: "customer", Cols: []*engine.Column{
		{Name: "id", Vals: cid},
		{Name: "nation", Vals: nation},
	}})

	oid := make([]int64, nOrders)
	ocid := make([]int64, nOrders)
	price := make([]int64, nOrders)
	var liOID, liQty []int64
	for i := range oid {
		oid[i] = int64(i)
		ocid[i] = int64(rng.Intn(nCustomers))
		price[i] = int64(rng.Intn(1000))
		items := 1
		if price[i] > 800 {
			items = 15
		}
		for k := 0; k < items; k++ {
			liOID = append(liOID, oid[i])
			liQty = append(liQty, int64(rng.Intn(50)))
		}
	}
	cat.MustAddTable(&engine.Table{Name: "orders", Cols: []*engine.Column{
		{Name: "id", Vals: oid},
		{Name: "cid", Vals: ocid},
		{Name: "price", Vals: price},
	}})
	cat.MustAddTable(&engine.Table{Name: "lineitem", Cols: []*engine.Column{
		{Name: "oid", Vals: liOID},
		{Name: "qty", Vals: liQty},
	}})

	preds := []engine.Pred{
		engine.Join(cat.MustAttr("lineitem.oid"), cat.MustAttr("orders.id")),
		engine.Join(cat.MustAttr("orders.cid"), cat.MustAttr("customer.id")),
		engine.Filter(cat.MustAttr("orders.price"), 801, 1000),
		engine.Eq(cat.MustAttr("customer.nation"), 1),
	}
	q := engine.NewQuery(cat, preds)
	pool := sit.BuildWorkloadPool(sit.NewBuilder(cat), []*engine.Query{q}, 2)
	return &fixture{cat: cat, query: q, pool: pool}
}

func (f *fixture) ladder(cfg Config) *Estimator {
	return New(core.NewEstimator(f.cat, f.pool, core.NInd{}), cfg)
}

// checkValue asserts the ladder's core contract on an estimate.
func checkValue(t *testing.T, label string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		t.Fatalf("%s = %v, want finite non-negative", label, v)
	}
}

// expiredCtx returns an already-cancelled context.
func expiredCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestUnarmedBitIdentity: with no faults, no deadline and healthy stats the
// ladder's answer is bit-identical to the plain estimator's, at TierFullDP
// with empty fallback reason.
func TestUnarmedBitIdentity(t *testing.T) {
	t.Parallel()
	f := newFixture(1)
	lad := f.ladder(Config{})

	plain := core.NewEstimator(f.cat, f.pool, core.NInd{})
	want := plain.NewRun(f.query).GetSelectivity(f.query.All()).Sel

	sel, prov := lad.Selectivity(context.Background(), f.query, f.query.All())
	if sel != want {
		t.Fatalf("ladder sel %v != plain sel %v (must be bit-identical)", sel, want)
	}
	if prov.Tier != TierFullDP || prov.FallbackReason != "" {
		t.Fatalf("provenance = %+v, want clean TierFullDP", prov)
	}

	card, prov2 := lad.Cardinality(nil, f.query)
	wantCard := want * f.cat.CrossSize(engine.PredsTables(f.cat, f.query.Preds, f.query.All()))
	if card != wantCard || prov2.Tier != TierFullDP {
		t.Fatalf("cardinality = %v (%+v), want %v at TierFullDP", card, prov2, wantCard)
	}
}

// TestNodeBudgetDegradesToGreedyChain: an absurdly small node budget aborts
// the full DP and the greedy chain answers.
func TestNodeBudgetDegradesToGreedyChain(t *testing.T) {
	t.Parallel()
	f := newFixture(2)
	lad := f.ladder(Config{NodeBudget: 1})
	sel, prov := lad.Selectivity(context.Background(), f.query, f.query.All())
	checkValue(t, "budget-capped sel", sel)
	if sel > 1 {
		t.Fatalf("sel = %v > 1", sel)
	}
	if prov.Tier != TierBudgetedDP {
		t.Fatalf("tier = %v, want budgeted-dp; reason %q", prov.Tier, prov.FallbackReason)
	}
	if !strings.Contains(prov.FallbackReason, "node budget exhausted") {
		t.Fatalf("reason %q does not name the node budget", prov.FallbackReason)
	}
}

// TestExpiredDeadlineDegradesToNoSIT: a dead context fails every deadline-
// honoring tier in order; the independence tier (which must answer) does.
func TestExpiredDeadlineDegradesToNoSIT(t *testing.T) {
	t.Parallel()
	f := newFixture(3)
	lad := f.ladder(Config{})
	sel, prov := lad.Selectivity(expiredCtx(), f.query, f.query.All())
	checkValue(t, "expired-deadline sel", sel)
	if sel > 1 {
		t.Fatalf("sel = %v > 1", sel)
	}
	if prov.Tier != TierNoSIT {
		t.Fatalf("tier = %v, want no-sit; reason %q", prov.Tier, prov.FallbackReason)
	}
	// Degradation must be ordered: every abandoned rung is accounted for.
	for _, rung := range []string{"full-dp:", "budgeted-dp:", "gvm:"} {
		if !strings.Contains(prov.FallbackReason, rung) {
			t.Fatalf("reason %q missing rung %q", prov.FallbackReason, rung)
		}
	}
}

// faultMatrix drives each injection point through the ladder and asserts the
// expected landing tier. Not parallel: arming is process-global.
func TestFaultMatrix(t *testing.T) {
	defer faults.Disarm()
	cases := []struct {
		name      string
		schedule  *faults.Schedule
		wantTiers []Tier // acceptable landing tiers, most expected first
	}{
		// A single injected panic kills the full DP (the first ApproxFactor
		// call panics); the fresh greedy-chain run is past the fault's Limit
		// and answers.
		{"panic-once", faults.NewSchedule(1).Set(faults.PanicInFactor, faults.Rule{Limit: 1}), []Tier{TierBudgetedDP}},
		// Unlimited panics kill both DP tiers; GVM never calls ApproxFactor,
		// so it answers.
		{"panic-always", faults.NewSchedule(1).Set(faults.PanicInFactor, faults.Rule{}), []Tier{TierGVM}},
		// One NaN factor: the poisoned candidate may or may not win the DP's
		// error competition, so the full DP either answers clean or is
		// rejected by the invariant guard and the (now fault-free) greedy
		// chain answers. Either way the NaN itself must never be served.
		{"nan-once", faults.NewSchedule(1).Set(faults.NaNSelectivity, faults.Rule{Limit: 1}), []Tier{TierFullDP, TierBudgetedDP}},
		// Every factor NaN: both DP tiers produce out-of-range values and
		// are rejected; GVM answers.
		{"nan-always", faults.NewSchedule(1).Set(faults.NaNSelectivity, faults.Rule{}), []Tier{TierGVM}},
		// Quarantine: every SIT is rotten on first validation. Estimation
		// still succeeds at full fidelity — with fallback selectivities —
		// because quarantine degrades statistics, not the algorithm.
		{"corrupt-all", faults.NewSchedule(1).Set(faults.CorruptBucket, faults.Rule{}), []Tier{TierFullDP}},
		// An eviction storm only costs recomputation; values are unchanged
		// and the full DP answers.
		{"evict-storm", faults.NewSchedule(1).Set(faults.CacheEvictStorm, faults.Rule{}), []Tier{TierFullDP}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer faults.Disarm()
			f := newFixture(4) // fresh fixture: fresh pool, no cross-case quarantine
			lad := f.ladder(Config{})
			faults.Arm(tc.schedule)
			sel, prov := lad.Selectivity(context.Background(), f.query, f.query.All())
			faults.Disarm()
			checkValue(t, tc.name+" sel", sel)
			if sel > 1 {
				t.Fatalf("%s: sel = %v > 1", tc.name, sel)
			}
			ok := false
			for _, want := range tc.wantTiers {
				if prov.Tier == want {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("%s: tier = %v, want one of %v (reason %q)", tc.name, prov.Tier, tc.wantTiers, prov.FallbackReason)
			}
			if prov.Tier != TierFullDP && prov.FallbackReason == "" {
				t.Fatalf("%s: degraded answer carries no fallback reason", tc.name)
			}
		})
	}
}

// TestCorruptBucketQuarantinesThroughLadder: the corrupt-bucket fault drives
// the pool's quarantine and the ladder keeps answering in range.
func TestCorruptBucketQuarantinesThroughLadder(t *testing.T) {
	defer faults.Disarm()
	f := newFixture(5)
	lad := f.ladder(Config{})
	faults.Arm(faults.NewSchedule(1).Set(faults.CorruptBucket, faults.Rule{}))
	sel, _ := lad.Selectivity(context.Background(), f.query, f.query.All())
	faults.Disarm()
	checkValue(t, "quarantined sel", sel)
	h := f.pool.HealthSnapshot()
	if h.Quarantined == 0 {
		t.Fatal("corrupt-bucket fault quarantined nothing")
	}
	if h.SITs != 0 {
		t.Fatalf("health reports %d healthy SITs under an always-corrupt fault", h.SITs)
	}
}

// TestEvictStormPreservesValues: with a shared cross-query cache under an
// eviction storm, estimates equal the uncached estimator's bit for bit —
// eviction can only cost recomputation. Not parallel (global arming).
func TestEvictStormPreservesValues(t *testing.T) {
	defer faults.Disarm()
	f := newFixture(6)
	plain := core.NewEstimator(f.cat, f.pool, core.NInd{})
	want := plain.NewRun(f.query).GetSelectivity(f.query.All()).Sel

	cached := core.NewEstimator(f.cat, f.pool, core.NInd{})
	cached.Cache = core.NewSelCache(256)
	lad := New(cached, Config{})
	faults.Arm(faults.NewSchedule(1).Set(faults.CacheEvictStorm, faults.Rule{Every: 2}))
	for i := 0; i < 3; i++ {
		sel, prov := lad.Selectivity(context.Background(), f.query, f.query.All())
		if sel != want {
			t.Fatalf("round %d: sel %v != uncached %v under eviction storm", i, sel, want)
		}
		if prov.Tier != TierFullDP {
			t.Fatalf("round %d: tier = %v", i, prov.Tier)
		}
	}
}

// TestSlowFactorDeterministicDelay: the slow-factor point fires on schedule
// (counted) and estimation still answers correctly. Not parallel.
func TestSlowFactorDeterministicDelay(t *testing.T) {
	defer faults.Disarm()
	f := newFixture(7)
	lad := f.ladder(Config{})
	s := faults.NewSchedule(1).Set(faults.SlowFactor, faults.Rule{Limit: 3})
	s.SlowFactorDelay = 1 // 1ns: exercise the sleep path without slowing the suite
	faults.Arm(s)
	sel, prov := lad.Selectivity(context.Background(), f.query, f.query.All())
	faults.Disarm()
	checkValue(t, "slow-factor sel", sel)
	if prov.Tier != TierFullDP {
		t.Fatalf("tier = %v (a delay alone must not degrade without a deadline)", prov.Tier)
	}
	if s.Fires(faults.SlowFactor) != 3 {
		t.Fatalf("slow-factor fired %d times, want 3", s.Fires(faults.SlowFactor))
	}
}

// TestLadderNeverInvalidUnderChaos: probabilistic multi-point schedules
// across many seeds; every answer must satisfy the ladder contract. Not
// parallel.
func TestLadderNeverInvalidUnderChaos(t *testing.T) {
	defer faults.Disarm()
	f := newFixture(8)
	for seed := int64(0); seed < 12; seed++ {
		s := faults.NewSchedule(seed).
			Set(faults.PanicInFactor, faults.Rule{Prob: 0.2}).
			Set(faults.NaNSelectivity, faults.Rule{Prob: 0.2}).
			Set(faults.CacheEvictStorm, faults.Rule{Prob: 0.3})
		faults.Arm(s)
		lad := f.ladder(Config{})
		sel, prov := lad.Selectivity(context.Background(), f.query, f.query.All())
		card, _ := lad.Cardinality(context.Background(), f.query)
		faults.Disarm()
		checkValue(t, "chaos sel", sel)
		if sel > 1 {
			t.Fatalf("seed %d: sel = %v > 1", seed, sel)
		}
		checkValue(t, "chaos card", card)
		if prov.Tier > TierNoSIT {
			t.Fatalf("seed %d: tier out of range: %v", seed, prov.Tier)
		}
	}
}

// TestTierNames: provenance tiers render distinct names.
func TestTierNames(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for _, tier := range []Tier{TierFullDP, TierBudgetedDP, TierGVM, TierNoSIT} {
		name := tier.String()
		if name == "" || seen[name] {
			t.Fatalf("tier %d has empty or duplicate name %q", tier, name)
		}
		seen[name] = true
	}
}
