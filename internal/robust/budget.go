package robust

import "time"

// This file maps caller-supplied deadlines onto ladder configurations — the
// service layer's "deadline → budget" translation. The bands are chosen from
// the repository's own measurements (BENCH_dp.json, BENCH_robust.json): a
// full DP over the workload's n≤13-predicate queries completes in hundreds
// of microseconds to low milliseconds when healthy, the greedy chain and GVM
// tiers in tens of microseconds, and the independence tier in microseconds.
// A request that arrives with (or has, after queueing) only a few
// milliseconds of budget left therefore should not start an enumeration it
// will almost certainly have to abort — entering the ladder at a cheaper
// rung answers sooner AND frees the slot sooner, which is exactly how
// overload sheds: fidelity degrades, availability does not.

// The deadline bands, exported so the service layer and its documentation
// stay in sync with the mapping actually applied.
const (
	// FullBudgetDeadline admits the unrestricted full DP (default node
	// budget) at or above this remaining deadline.
	FullBudgetDeadline = 200 * time.Millisecond
	// TightBudgetDeadline admits the full DP under TightNodeBudget nodes.
	TightBudgetDeadline = 50 * time.Millisecond
	// ChainDeadline admits at most the greedy decomposition chain.
	ChainDeadline = 10 * time.Millisecond
	// GVMDeadline admits at most greedy view matching; below it only the
	// independence tier (plus its closed-form floor) runs.
	GVMDeadline = 2 * time.Millisecond

	// TightNodeBudget is the DP node cap of the TightBudgetDeadline band:
	// large enough for every healthy workload query in this repository,
	// small enough that a pathological enumeration aborts in milliseconds.
	TightNodeBudget = 25_000
)

// BudgetForDeadline translates a request's remaining deadline into a ladder
// configuration: the entry tier and the DP node budget. The mapping is
// monotone — less time never buys a higher tier — and total: zero or
// negative remaining time still yields a valid config (independence tier
// only), because the ladder answers always.
//
// The returned config carries SkipReason "deadline-mapped" so the skipped
// rungs are attributed to the deadline, not to a fault.
func BudgetForDeadline(remaining time.Duration) Config {
	cfg := Config{SkipReason: "deadline-mapped"}
	switch {
	case remaining >= FullBudgetDeadline:
		cfg.MaxTier = TierFullDP
	case remaining >= TightBudgetDeadline:
		cfg.MaxTier = TierFullDP
		cfg.NodeBudget = TightNodeBudget
	case remaining >= ChainDeadline:
		cfg.MaxTier = TierBudgetedDP
	case remaining >= GVMDeadline:
		cfg.MaxTier = TierGVM
	default:
		cfg.MaxTier = TierNoSIT
	}
	return cfg
}
