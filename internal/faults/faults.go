// Package faults is a deterministic fault-injection harness for the
// estimation stack. Production estimators must keep answering when
// statistics are corrupt, a factor computation panics, or the DP blows its
// latency budget; this package lets tests drive exactly those failures
// through the real code paths, reproducibly.
//
// Injection points are compiled into the hot paths permanently but sit
// behind a process-wide atomic pointer: when no schedule is armed, a call
// site pays one atomic load plus a nil check and nothing else, so the
// un-armed estimator is bit-identical (and, within noise, speed-identical)
// to one built without the harness. Tests arm a Schedule describing which
// points fire on which hit numbers; every decision is a pure function of
// the schedule (rules plus seed) and the per-point hit counter, so a
// single-goroutine run replays identically under the same schedule.
//
// Arming is process-global. Tests that arm a schedule must not run in
// parallel with tests that assume a fault-free estimator (within one test
// binary, keep fault tests serial; `go test ./...` isolates packages in
// separate processes).
package faults

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Point is one injection site wired into the estimation stack.
type Point uint8

const (
	// CorruptBucket makes SIT histogram validation report a corrupt bucket,
	// driving the pool's quarantine machinery (internal/sit).
	CorruptBucket Point = iota
	// NaNSelectivity replaces a conditional factor's selectivity with NaN
	// (internal/core.ApproxFactor).
	NaNSelectivity
	// SlowFactor delays a conditional factor computation by the schedule's
	// SlowFactorDelay, for deadline/timeout testing (internal/core).
	SlowFactor
	// PanicInFactor panics inside a conditional factor computation with an
	// Injected value (internal/core.ApproxFactor).
	PanicInFactor
	// CacheEvictStorm drops every entry of the cross-query selectivity
	// cache ahead of a lookup (internal/selcache).
	CacheEvictStorm
	// SnapshotTornWrite truncates a lifecycle pool snapshot mid-payload —
	// modeling a crash between the data write and its fsync — so recovery
	// code must detect the torn file and fall back a generation
	// (internal/lifecycle).
	SnapshotTornWrite
	// RebuildFail makes a statistics rebuild attempt fail, driving the
	// lifecycle manager's retry/backoff/park machinery (internal/lifecycle).
	RebuildFail
	// FsyncError makes the snapshot writer's fsync report an I/O error
	// before the atomic rename (internal/lifecycle).
	FsyncError
	// NetPartition makes a cluster transport call fail as if the peer were
	// unreachable across a network partition (internal/cluster).
	NetPartition
	// NetSlowPeer delays a cluster transport call by the schedule's
	// SlowFactorDelay before it proceeds, for remote-deadline testing
	// (internal/cluster).
	NetSlowPeer
	// NetTruncatedStream cuts a shard replication stream mid-frame, so the
	// wire decoder must reject the truncated SITSNAP payload
	// (internal/cluster).
	NetTruncatedStream
	// NetStaleEpoch replays the oldest frame ever served for the peer in
	// place of the current one, so epoch fencing must reject it
	// (internal/cluster).
	NetStaleEpoch
	// NetDuplicateDelivery re-delivers the previously delivered frame for
	// the peer, so admission must be idempotent (internal/cluster).
	NetDuplicateDelivery

	// NumPoints is the number of injection points.
	NumPoints
)

// String returns the point's schedule name.
func (p Point) String() string {
	switch p {
	case CorruptBucket:
		return "corrupt-bucket"
	case NaNSelectivity:
		return "nan-selectivity"
	case SlowFactor:
		return "slow-factor"
	case PanicInFactor:
		return "panic-in-factor"
	case CacheEvictStorm:
		return "cache-evict-storm"
	case SnapshotTornWrite:
		return "snapshot-torn-write"
	case RebuildFail:
		return "rebuild-fail"
	case FsyncError:
		return "fsync-error"
	case NetPartition:
		return "net-partition"
	case NetSlowPeer:
		return "net-slow-peer"
	case NetTruncatedStream:
		return "net-truncated-stream"
	case NetStaleEpoch:
		return "net-stale-epoch"
	case NetDuplicateDelivery:
		return "net-duplicate-delivery"
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// Injected is the panic value thrown by panic-type faults, so recovery code
// can distinguish injected failures from genuine bugs in diagnostics.
type Injected struct {
	Point Point
}

// Error implements error; Injected values also read well as panic payloads.
func (i Injected) Error() string { return "fault injection: " + i.Point.String() }

// Rule schedules one injection point over that point's hit sequence (hits
// are numbered from 1 in arrival order). An armed point fires on hit n when
//
//	n ≥ Start, (n-Start) is a multiple of Every, fewer than Limit prior
//	fires, and — if Prob ∈ (0,1) — the seeded hash of (seed, point, n)
//	lands below Prob.
//
// Zero values take defaults: Start 1, Every 1, Limit unlimited, Prob off
// (fire deterministically whenever the counters say so).
type Rule struct {
	Start int     // first eligible hit number (default 1)
	Every int     // fire every Every-th eligible hit (default 1)
	Limit int     // maximum number of fires (0 = unlimited)
	Prob  float64 // eligible-hit fire probability, derived from the seed
}

// Schedule is an immutable-after-arm set of rules plus per-point counters.
// Fire decisions are deterministic in (rules, Seed, per-point hit number);
// counters are atomic so concurrent estimation goroutines can share one
// armed schedule, with per-goroutine determinism traded only where the
// interleaving itself is racy.
type Schedule struct {
	// Seed drives the Prob hash; schedules with different seeds fire
	// probabilistic rules on different (but per-seed reproducible) hits.
	Seed int64
	// SlowFactorDelay is how long a firing SlowFactor point sleeps
	// (default 2ms).
	SlowFactorDelay time.Duration

	rules [NumPoints]Rule
	armed [NumPoints]bool
	hits  [NumPoints]atomic.Int64
	fires [NumPoints]atomic.Int64
}

// NewSchedule returns an empty schedule (no point armed) with the seed.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{Seed: seed, SlowFactorDelay: 2 * time.Millisecond}
}

// Set arms the point with the rule and returns the schedule for chaining.
// Call before Arm, never after (rules are read without synchronization).
func (s *Schedule) Set(p Point, r Rule) *Schedule {
	if r.Start <= 0 {
		r.Start = 1
	}
	if r.Every <= 0 {
		r.Every = 1
	}
	s.rules[p] = r
	s.armed[p] = true
	return s
}

// Hits returns how many times the point has been reached.
func (s *Schedule) Hits(p Point) int64 {
	if s == nil {
		return 0
	}
	return s.hits[p].Load()
}

// Fires returns how many times the point actually fired.
func (s *Schedule) Fires(p Point) int64 {
	if s == nil {
		return 0
	}
	return s.fires[p].Load()
}

// Fire records a hit at the point and reports whether the fault fires. It
// is nil-safe (a nil schedule never fires) so call sites can hold the
// Active() result without re-checking.
func (s *Schedule) Fire(p Point) bool {
	if s == nil || !s.armed[p] {
		return false
	}
	r := s.rules[p]
	n := s.hits[p].Add(1)
	if n < int64(r.Start) || (n-int64(r.Start))%int64(r.Every) != 0 {
		return false
	}
	if r.Prob > 0 && r.Prob < 1 && !s.probFire(p, n, r.Prob) {
		return false
	}
	if r.Limit > 0 {
		for {
			f := s.fires[p].Load()
			if f >= int64(r.Limit) {
				return false
			}
			if s.fires[p].CompareAndSwap(f, f+1) {
				return true
			}
		}
	}
	s.fires[p].Add(1)
	return true
}

// probFire hashes (seed, point, hit) with splitmix64 and fires when the
// result, mapped to [0,1), lands below prob — seeded pseudo-randomness with
// no global state and no math/rand import.
func (s *Schedule) probFire(p Point, n int64, prob float64) bool {
	x := uint64(s.Seed)*0x9e3779b97f4a7c15 ^ uint64(p)<<56 ^ uint64(n)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < prob
}

// Sleep blocks for the schedule's SlowFactorDelay; call sites invoke it when
// the SlowFactor point fires.
func (s *Schedule) Sleep() {
	d := s.SlowFactorDelay
	if d <= 0 {
		d = 2 * time.Millisecond
	}
	time.Sleep(d)
}

// active is the process-wide armed schedule; nil means the harness is off
// and every injection point is a no-op.
var active atomic.Pointer[Schedule]

// Arm installs the schedule process-wide. Passing nil disarms.
func Arm(s *Schedule) {
	active.Store(s)
}

// Disarm removes any armed schedule, returning every injection point to its
// no-op default.
func Disarm() {
	active.Store(nil)
}

// Active returns the armed schedule, or nil when the harness is off. Hot
// paths load it once per operation and pass the (possibly nil) pointer to
// Fire.
func Active() *Schedule {
	return active.Load()
}
