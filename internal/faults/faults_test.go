package faults

import (
	"sync"
	"testing"
)

// TestDisarmedNeverFires: a nil schedule (harness off) is a total no-op.
func TestDisarmedNeverFires(t *testing.T) {
	t.Parallel()
	var s *Schedule
	for p := Point(0); p < NumPoints; p++ {
		if s.Fire(p) {
			t.Fatalf("nil schedule fired %s", p)
		}
		if s.Hits(p) != 0 || s.Fires(p) != 0 {
			t.Fatalf("nil schedule counted hits/fires for %s", p)
		}
	}
}

// TestUnarmedPointNeverFires: arming one point leaves the others silent and
// uncounted in fires.
func TestUnarmedPointNeverFires(t *testing.T) {
	t.Parallel()
	s := NewSchedule(1).Set(NaNSelectivity, Rule{})
	for i := 0; i < 100; i++ {
		if s.Fire(CorruptBucket) {
			t.Fatal("unarmed point fired")
		}
	}
	if got := s.Fires(CorruptBucket); got != 0 {
		t.Fatalf("unarmed point recorded %d fires", got)
	}
}

// TestRuleScheduleDeterminism: Start/Every/Limit carve out exactly the
// documented hit numbers, twice over (replay gives the same decisions).
func TestRuleScheduleDeterminism(t *testing.T) {
	t.Parallel()
	run := func() []int {
		s := NewSchedule(7).Set(PanicInFactor, Rule{Start: 3, Every: 4, Limit: 3})
		var fired []int
		for n := 1; n <= 30; n++ {
			if s.Fire(PanicInFactor) {
				fired = append(fired, n)
			}
		}
		return fired
	}
	want := []int{3, 7, 11}
	for attempt := 0; attempt < 2; attempt++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("fired on hits %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("fired on hits %v, want %v", got, want)
			}
		}
	}
}

// TestProbSeeded: probabilistic rules are a pure function of (seed, point,
// hit): same seed replays identically, different seeds differ, and the fire
// rate lands in the right ballpark.
func TestProbSeeded(t *testing.T) {
	t.Parallel()
	fireSet := func(seed int64) []bool {
		s := NewSchedule(seed).Set(SlowFactor, Rule{Prob: 0.3})
		out := make([]bool, 2000)
		for i := range out {
			out[i] = s.Fire(SlowFactor)
		}
		return out
	}
	a, b, c := fireSet(42), fireSet(42), fireSet(43)
	count, differ := 0, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fire decisions")
		}
		if a[i] != c[i] {
			differ = true
		}
		if a[i] {
			count++
		}
	}
	if !differ {
		t.Fatal("different seeds produced identical fire decisions")
	}
	if count < 450 || count > 750 {
		t.Fatalf("prob 0.3 fired %d/2000 times", count)
	}
}

// TestLimitUnderConcurrency: the fire cap holds exactly even when many
// goroutines hammer one point.
func TestLimitUnderConcurrency(t *testing.T) {
	t.Parallel()
	s := NewSchedule(1).Set(CacheEvictStorm, Rule{Limit: 5})
	var wg sync.WaitGroup
	total := make(chan int, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 200; i++ {
				if s.Fire(CacheEvictStorm) {
					n++
				}
			}
			total <- n
		}()
	}
	wg.Wait()
	close(total)
	sum := 0
	for n := range total {
		sum += n
	}
	if sum != 5 {
		t.Fatalf("limit 5, but %d fires observed", sum)
	}
	if got := s.Fires(CacheEvictStorm); got != 5 {
		t.Fatalf("Fires() = %d, want 5", got)
	}
	if got := s.Hits(CacheEvictStorm); got != 16*200 {
		t.Fatalf("Hits() = %d, want %d", got, 16*200)
	}
}

// TestArmDisarm: Active reflects the installed schedule; Disarm restores the
// no-op default.
func TestArmDisarm(t *testing.T) {
	// Not parallel: Arm is process-global state shared with other tests in
	// this package's binary.
	s := NewSchedule(1).Set(NaNSelectivity, Rule{})
	Arm(s)
	if Active() != s {
		t.Fatal("Active() did not return the armed schedule")
	}
	Disarm()
	if Active() != nil {
		t.Fatal("Disarm left a schedule active")
	}
}

// TestPointNames: every point renders a distinct schedule name.
func TestPointNames(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for p := Point(0); p < NumPoints; p++ {
		name := p.String()
		if name == "" || seen[name] {
			t.Fatalf("point %d has empty or duplicate name %q", p, name)
		}
		seen[name] = true
	}
}
