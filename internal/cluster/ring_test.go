package cluster

import (
	"math/rand"
	"testing"
)

// TestRingDeterministicAcrossPermutations: every node must compute the same
// ring from the same membership, whatever order the config lists it in.
func TestRingDeterministicAcrossPermutations(t *testing.T) {
	ids := HarnessIDs(5)
	ref, err := NewRing(ids, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	keys := []string{"orders.price", "customer.nation", "lineitem.qty", "orders.id", "customer.id", "lineitem.oid"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		perm := append([]NodeID(nil), ids...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		r, err := NewRing(perm, 0)
		if err != nil {
			t.Fatalf("NewRing(perm): %v", err)
		}
		for _, k := range keys {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("trial %d: Owner(%q) = %s, reference says %s", trial, k, got, want)
			}
		}
	}
}

// TestRingRejectsBadMembership: empty and duplicate memberships are errors.
func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing(nil) accepted an empty membership")
	}
	if _, err := NewRing([]NodeID{"a", "b", "a"}, 0); err == nil {
		t.Fatal("NewRing accepted a duplicate node id")
	}
}

// TestRingBalance: with enough virtual nodes every member owns a
// non-degenerate share of a large key space.
func TestRingBalance(t *testing.T) {
	ids := HarnessIDs(4)
	r, err := NewRing(ids, 128)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	counts := make(map[NodeID]int)
	const keys = 10_000
	for i := 0; i < keys; i++ {
		counts[r.Owner(string(rune('a'+i%26))+string(rune('0'+i%10))+"key"+string(rune(i)))]++
	}
	for _, id := range ids {
		share := float64(counts[id]) / keys
		if share < 0.05 {
			t.Errorf("node %s owns %.1f%% of keys — degenerate split: %v", id, 100*share, counts)
		}
	}
}

// TestShardsDisjointAndCovering: the per-node shards of a pool partition
// it — no SIT lost, none duplicated.
func TestShardsDisjointAndCovering(t *testing.T) {
	fx := newClusterFixture(t)
	ids := HarnessIDs(3)
	r, err := NewRing(ids, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	seen := make(map[string]NodeID)
	total := 0
	for _, id := range ids {
		shard := r.Shard(fx.pool, id)
		for _, s := range shard.SITs() {
			if prev, dup := seen[s.ID()]; dup {
				t.Fatalf("SIT %s owned by both %s and %s", s.ID(), prev, id)
			}
			seen[s.ID()] = id
			total++
		}
	}
	if want := len(fx.pool.SITs()); total != want {
		t.Fatalf("shards cover %d SITs, pool has %d", total, want)
	}
}
