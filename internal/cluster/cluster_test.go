package cluster

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"condsel/internal/core"
	"condsel/internal/engine"
	"condsel/internal/faults"
	"condsel/internal/robust"
	"condsel/internal/sit"
)

// clusterFixture is the shared test world: the repository's standard
// 3-table correlated star, a workload of queries over it, and the full
// statistics pool a single-node estimator would own.
type clusterFixture struct {
	cat     *engine.Catalog
	pool    *sit.Pool
	queries []*engine.Query
}

func newClusterFixture(t testing.TB) *clusterFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	cat := engine.NewCatalog()
	const nCustomers, nOrders = 60, 300

	cid := make([]int64, nCustomers)
	nation := make([]int64, nCustomers)
	for i := range cid {
		cid[i] = int64(i)
		if rng.Float64() < 0.8 {
			nation[i] = 1
		} else {
			nation[i] = int64(2 + rng.Intn(20))
		}
	}
	cat.MustAddTable(&engine.Table{Name: "customer", Cols: []*engine.Column{
		{Name: "id", Vals: cid},
		{Name: "nation", Vals: nation},
	}})

	oid := make([]int64, nOrders)
	ocid := make([]int64, nOrders)
	price := make([]int64, nOrders)
	var liOID, liQty []int64
	for i := range oid {
		oid[i] = int64(i)
		ocid[i] = int64(rng.Intn(nCustomers))
		price[i] = int64(rng.Intn(1000))
		items := 1
		if price[i] > 800 {
			items = 12
		}
		for k := 0; k < items; k++ {
			liOID = append(liOID, oid[i])
			liQty = append(liQty, int64(rng.Intn(50)))
		}
	}
	cat.MustAddTable(&engine.Table{Name: "orders", Cols: []*engine.Column{
		{Name: "id", Vals: oid},
		{Name: "cid", Vals: ocid},
		{Name: "price", Vals: price},
	}})
	cat.MustAddTable(&engine.Table{Name: "lineitem", Cols: []*engine.Column{
		{Name: "oid", Vals: liOID},
		{Name: "qty", Vals: liQty},
	}})

	j1 := engine.Join(cat.MustAttr("lineitem.oid"), cat.MustAttr("orders.id"))
	j2 := engine.Join(cat.MustAttr("orders.cid"), cat.MustAttr("customer.id"))
	fPrice := engine.Filter(cat.MustAttr("orders.price"), 801, 1000)
	fNation := engine.Eq(cat.MustAttr("customer.nation"), 1)
	fQty := engine.Filter(cat.MustAttr("lineitem.qty"), 0, 24)

	queries := []*engine.Query{
		engine.NewQuery(cat, []engine.Pred{j1, j2, fPrice, fNation}),
		engine.NewQuery(cat, []engine.Pred{j2, fNation}),
		engine.NewQuery(cat, []engine.Pred{j1, fQty, fPrice}),
		engine.NewQuery(cat, []engine.Pred{fPrice}),
		engine.NewQuery(cat, []engine.Pred{j1, j2, fQty}),
	}
	pool := sit.BuildWorkloadPool(sit.NewBuilder(cat), queries, 2)
	return &clusterFixture{cat: cat, pool: pool, queries: queries}
}

// fastConfig is harness tuning that keeps failure arcs quick: short fetch
// deadlines, two attempts, millisecond backoff.
func fastConfig() Config {
	return Config{
		FetchDeadline: 50 * time.Millisecond,
		MaxAttempts:   2,
		BackoffBase:   time.Millisecond,
		BackoffCap:    4 * time.Millisecond,
		Seed:          1,
	}
}

// reference answers queries the way a single node owning the full pool
// would.
func (fx *clusterFixture) reference() *robust.Estimator {
	return robust.New(core.NewEstimator(fx.cat, fx.pool, core.Diff{}), robust.Config{})
}

// TestWarmClusterBitIdentical: after every node replicates every peer,
// each node's estimate equals the single-node full-pool answer bit for
// bit, at full fidelity.
func TestWarmClusterBitIdentical(t *testing.T) {
	fx := newClusterFixture(t)
	h, err := NewHarness(fx.cat, fx.pool, 3, fastConfig())
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	if err := h.WarmAll(ctx); err != nil {
		t.Fatalf("WarmAll: %v", err)
	}
	ref := fx.reference()
	for _, q := range fx.queries {
		want, _ := ref.Cardinality(ctx, q)
		for _, id := range h.IDs {
			got, prov := h.Nodes[id].Estimate(ctx, q, robust.Config{})
			if got != want {
				t.Fatalf("node %s: %s: card %v, single-node %v", id, q, got, want)
			}
			if prov.Tier != robust.TierFullDP {
				t.Fatalf("node %s answered from %s on a warm cluster (%s)", id, prov.Tier, prov.FallbackReason)
			}
		}
	}
}

// TestPartitionDegradesNeverErrors is the acceptance arc: with a peer
// partitioned away, 100% of estimates still answer — degraded answers
// carry remote-shard-unavailable provenance naming the peer, none error,
// and concurrent estimation under -race stays clean.
func TestPartitionDegradesNeverErrors(t *testing.T) {
	fx := newClusterFixture(t)
	h, err := NewHarness(fx.cat, fx.pool, 3, fastConfig())
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	// No warm-up: node-0 starts with every peer missing, and node-1 is
	// unreachable from the start.
	victim, lost := h.Node(0), h.IDs[1]
	h.Transport.Partition(victim.ID(), lost)

	needLost := make(map[*engine.Query]bool)
	for _, q := range fx.queries {
		for _, p := range q.Preds {
			for _, attr := range predAttrs(p) {
				if h.Ring.OwnerOfAttr(fx.cat, attr) == lost {
					needLost[q] = true
				}
			}
		}
	}
	if len(needLost) == 0 {
		t.Fatal("fixture workload never touches the partitioned shard — ring layout changed?")
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for _, q := range fx.queries {
					card, prov := victim.Estimate(ctx, q, robust.Config{})
					if math.IsNaN(card) || math.IsInf(card, 0) || card < 0 {
						t.Errorf("%s: non-finite cardinality %v", q, card)
						return
					}
					if needLost[q] && !strings.Contains(prov.FallbackReason, robust.RemoteUnavailablePrefix) {
						t.Errorf("%s: needs shard of %s but provenance %q lacks %s",
							q, lost, prov.FallbackReason, robust.RemoteUnavailablePrefix)
						return
					}
					if needLost[q] && !strings.Contains(prov.FallbackReason, string(lost)) {
						t.Errorf("%s: provenance %q does not name the partitioned peer", q, prov.FallbackReason)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	c := victim.Counters()
	if c.Degraded == 0 {
		t.Fatal("partition never degraded an estimate")
	}
	if c.ReplFailures == 0 {
		t.Fatal("no replication failure recorded")
	}
}

// TestHealRereplicateBitIdentical: a partitioned peer rebuilds its shard
// (epoch bump) while cut off; after heal + re-replication the victim's
// answers are bit-identical to a single-node estimator over the healed
// full pool, and the stale pre-heal answers are gone.
func TestHealRereplicateBitIdentical(t *testing.T) {
	fx := newClusterFixture(t)
	h, err := NewHarness(fx.cat, fx.pool, 3, fastConfig())
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	if err := h.WarmAll(ctx); err != nil {
		t.Fatalf("WarmAll: %v", err)
	}
	victim, rebuilt := h.Node(0), h.Node(1)

	h.Transport.Partition(victim.ID(), rebuilt.ID())
	// The cut-off peer rebuilds its shard from scratch: new epoch, same
	// statistics content (a restart-shaped rebuild).
	rebuilt.RebuildLocal(h.Ring.Shard(fx.pool, rebuilt.ID()))
	if got := rebuilt.Stamp().Epoch; got != 2 {
		t.Fatalf("rebuild epoch = %d, want 2", got)
	}

	// During the partition the victim still answers (stale replica is
	// fine — fencing only refuses going backwards).
	for _, q := range fx.queries {
		if card, _ := victim.Estimate(ctx, q, robust.Config{}); math.IsNaN(card) {
			t.Fatalf("%s: NaN during partition", q)
		}
	}

	h.Transport.Heal(victim.ID(), rebuilt.ID())
	if err := victim.Replicate(ctx, rebuilt.ID()); err != nil {
		t.Fatalf("re-replication after heal: %v", err)
	}
	if got := victim.vec.Get(rebuilt.ID()).Epoch; got != 2 {
		t.Fatalf("admitted epoch = %d, want 2 after rebuild", got)
	}

	ref := fx.reference()
	for _, q := range fx.queries {
		want, _ := ref.Cardinality(ctx, q)
		got, prov := victim.Estimate(ctx, q, robust.Config{})
		if got != want {
			t.Fatalf("%s: healed answer %v, single-node %v", q, got, want)
		}
		if prov.Tier != robust.TierFullDP {
			t.Fatalf("%s: healed cluster answered from %s", q, prov.Tier)
		}
	}
}

// TestStaleEpochReplayRejected: a replayed old frame is refused by the
// fence and bumps no generation — the second half of the acceptance
// criteria.
func TestStaleEpochReplayRejected(t *testing.T) {
	fx := newClusterFixture(t)
	h, err := NewHarness(fx.cat, fx.pool, 3, fastConfig())
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	victim, peer := h.Node(0), h.Node(1)
	// First fetch records the epoch-1 frame as the transport's "oldest".
	if err := victim.Replicate(ctx, peer.ID()); err != nil {
		t.Fatalf("initial replicate: %v", err)
	}
	// Peer rebuilds; the victim admits epoch 2.
	peer.RebuildLocal(h.Ring.Shard(fx.pool, peer.ID()))
	if err := victim.Replicate(ctx, peer.ID()); err != nil {
		t.Fatalf("replicate after rebuild: %v", err)
	}
	genBefore := victim.MergedGeneration()
	admittedBefore := victim.vec.Get(peer.ID())
	rejectionsBefore := victim.Counters().FenceRejections

	// Replay the epoch-1 frame at the victim.
	sched := faults.NewSchedule(1).Set(faults.NetStaleEpoch, faults.Rule{Limit: 1})
	faults.Arm(sched)
	defer faults.Disarm()
	err = victim.Replicate(ctx, peer.ID())
	if err == nil {
		t.Fatal("stale-epoch replay was admitted")
	}
	if !strings.Contains(err.Error(), "stale-epoch") {
		t.Fatalf("replay failed with %v, want a stale-epoch fence rejection", err)
	}
	if got := victim.MergedGeneration(); got != genBefore {
		t.Fatalf("stale replay bumped the merged generation %d -> %d", genBefore, got)
	}
	if got := victim.vec.Get(peer.ID()); got != admittedBefore {
		t.Fatalf("stale replay moved the admitted stamp %v -> %v", admittedBefore, got)
	}
	if got := victim.Counters().FenceRejections; got != rejectionsBefore+1 {
		t.Fatalf("FenceRejections = %d, want %d", got, rejectionsBefore+1)
	}
}

// TestDuplicateDeliveryIdempotent: re-delivering the admitted frame is a
// no-op success — no error, no generation churn, caches stay warm.
func TestDuplicateDeliveryIdempotent(t *testing.T) {
	fx := newClusterFixture(t)
	h, err := NewHarness(fx.cat, fx.pool, 2, fastConfig())
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	victim, peer := h.Node(0), h.Node(1)
	if err := victim.Replicate(ctx, peer.ID()); err != nil {
		t.Fatalf("initial replicate: %v", err)
	}
	genBefore := victim.MergedGeneration()
	replBefore := victim.Counters().Replications

	sched := faults.NewSchedule(1).Set(faults.NetDuplicateDelivery, faults.Rule{Limit: 1})
	faults.Arm(sched)
	defer faults.Disarm()
	if err := victim.Replicate(ctx, peer.ID()); err != nil {
		t.Fatalf("duplicate delivery errored: %v", err)
	}
	if got := victim.MergedGeneration(); got != genBefore {
		t.Fatalf("duplicate delivery bumped the merged generation %d -> %d", genBefore, got)
	}
	if got := victim.Counters().Replications; got != replBefore {
		t.Fatalf("duplicate delivery counted as a replication (%d -> %d)", replBefore, got)
	}
}

// TestTruncatedStreamDegrades: a shard stream cut mid-frame is rejected by
// the wire decoder and handled as one more unavailable-shard case — the
// estimate still answers, with provenance.
func TestTruncatedStreamDegrades(t *testing.T) {
	fx := newClusterFixture(t)
	h, err := NewHarness(fx.cat, fx.pool, 2, fastConfig())
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	victim := h.Node(0)

	sched := faults.NewSchedule(1).Set(faults.NetTruncatedStream, faults.Rule{})
	faults.Arm(sched)
	defer faults.Disarm()

	for _, q := range fx.queries {
		card, prov := victim.Estimate(ctx, q, robust.Config{})
		if math.IsNaN(card) || math.IsInf(card, 0) || card < 0 {
			t.Fatalf("%s: bad cardinality %v under truncated streams", q, card)
		}
		_ = prov
	}
	if victim.Counters().Degraded == 0 {
		t.Fatal("truncated streams never degraded an estimate — the peer shard was admitted from a torn frame?")
	}
	if victim.Counters().PeersAdmitted != 0 {
		t.Fatal("a truncated frame was admitted")
	}
}

// TestBreakerFailsFast: after the breaker trips on a partitioned peer,
// estimates stop paying fetch deadlines — the transport sees no more
// traffic until the cooldown.
func TestBreakerFailsFast(t *testing.T) {
	fx := newClusterFixture(t)
	clk := &fakeClock{t: time.Unix(0, 0)}
	cfg := fastConfig()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour
	cfg.Now = clk.now
	h, err := NewHarness(fx.cat, fx.pool, 2, cfg)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	victim, lost := h.Node(0), h.IDs[1]
	h.Transport.Partition(victim.ID(), lost)

	// Drive failures until the breaker trips.
	for i := 0; i < 3 && !victim.breakers[lost].Tripped(); i++ {
		_ = victim.Replicate(ctx, lost)
	}
	if !victim.breakers[lost].Tripped() {
		t.Fatal("breaker never tripped on a hard partition")
	}
	if err := victim.Replicate(ctx, lost); err != ErrBreakerOpen {
		t.Fatalf("tripped breaker let a call through: %v", err)
	}
	// Estimates still answer, with breaker-open provenance.
	q := fx.queries[0]
	card, prov := victim.Estimate(ctx, q, robust.Config{})
	if math.IsNaN(card) || card < 0 {
		t.Fatalf("bad cardinality %v behind a tripped breaker", card)
	}
	if !strings.Contains(prov.FallbackReason, "breaker-open") && !strings.Contains(prov.FallbackReason, robust.RemoteUnavailablePrefix) {
		t.Fatalf("provenance %q does not record the unavailable shard", prov.FallbackReason)
	}
	// After the cooldown the half-open probe heals the breaker once the
	// partition is gone.
	h.Transport.HealAll()
	clk.advance(2 * time.Hour)
	if err := victim.Replicate(ctx, lost); err != nil {
		t.Fatalf("half-open probe after heal failed: %v", err)
	}
	if victim.breakers[lost].Tripped() {
		t.Fatal("breaker still open after a successful probe")
	}
}

// TestProbeCancelledContextDoesNotStrandBreaker is the probe-leak
// regression arc: trip the breaker, elapse the cooldown, fail the
// half-open probe with a dead request context (Estimate hands the request
// ctx straight through, so a request-deadline expiry during the probe is
// routine). The probe must be released — before the fix, probing stayed
// true forever and every later call, anti-entropy included, got
// ErrBreakerOpen until process restart.
func TestProbeCancelledContextDoesNotStrandBreaker(t *testing.T) {
	fx := newClusterFixture(t)
	clk := &fakeClock{t: time.Unix(0, 0)}
	cfg := fastConfig()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour
	cfg.Now = clk.now
	h, err := NewHarness(fx.cat, fx.pool, 2, cfg)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	victim, lost := h.Node(0), h.IDs[1]
	h.Transport.Partition(victim.ID(), lost)
	for i := 0; i < 3 && !victim.breakers[lost].Tripped(); i++ {
		_ = victim.Replicate(ctx, lost)
	}
	if !victim.breakers[lost].Tripped() {
		t.Fatal("breaker never tripped on a hard partition")
	}

	// Cooldown elapses; the admitted half-open probe runs under an
	// already-cancelled context and exits without Success or Failure.
	clk.advance(2 * time.Hour)
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if err := victim.Replicate(dead, lost); err == nil {
		t.Fatal("probe under a cancelled context reported success")
	}

	// The partition heals; the very next call must run as a fresh probe.
	h.Transport.HealAll()
	if err := victim.Replicate(ctx, lost); err != nil {
		t.Fatalf("breaker stranded after a cancelled probe: %v", err)
	}
	if victim.breakers[lost].Tripped() {
		t.Fatal("breaker still open after a successful probe")
	}
}

// TestProbeFencedReplayDoesNotStrandBreaker: the other indeterminate probe
// outcome — the fetch succeeds but the frame is a stale-epoch replay the
// fence refuses. The breaker must neither re-trip (the peer was reachable)
// nor leak the probe.
func TestProbeFencedReplayDoesNotStrandBreaker(t *testing.T) {
	fx := newClusterFixture(t)
	clk := &fakeClock{t: time.Unix(0, 0)}
	cfg := fastConfig()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour
	cfg.Now = clk.now
	h, err := NewHarness(fx.cat, fx.pool, 2, cfg)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	victim, peer := h.Node(0), h.Node(1)
	// Record the epoch-1 frame as the transport's replayable "oldest", then
	// admit the peer's epoch-2 rebuild so a replay is genuinely stale.
	if err := victim.Replicate(ctx, peer.ID()); err != nil {
		t.Fatalf("initial replicate: %v", err)
	}
	peer.RebuildLocal(h.Ring.Shard(fx.pool, peer.ID()))
	if err := victim.Replicate(ctx, peer.ID()); err != nil {
		t.Fatalf("replicate after rebuild: %v", err)
	}

	h.Transport.Partition(victim.ID(), peer.ID())
	for i := 0; i < 3 && !victim.breakers[peer.ID()].Tripped(); i++ {
		_ = victim.Replicate(ctx, peer.ID())
	}
	if !victim.breakers[peer.ID()].Tripped() {
		t.Fatal("breaker never tripped")
	}
	h.Transport.HealAll()
	clk.advance(2 * time.Hour)

	// The half-open probe fetches a stale replay; the fence refuses it.
	sched := faults.NewSchedule(1).Set(faults.NetStaleEpoch, faults.Rule{Limit: 1})
	faults.Arm(sched)
	err = victim.Replicate(ctx, peer.ID())
	faults.Disarm()
	if err == nil || !strings.Contains(err.Error(), "stale-epoch") {
		t.Fatalf("probe replay failed with %v, want stale-epoch rejection", err)
	}

	// The probe was released: the next call is admitted and heals.
	if err := victim.Replicate(ctx, peer.ID()); err != nil {
		t.Fatalf("breaker stranded after a fenced probe: %v", err)
	}
	if victim.breakers[peer.ID()].Tripped() {
		t.Fatal("breaker still open after a successful probe")
	}
}

// TestSlowPeerHonorsDeadline: a slow peer burns the per-call deadline, not
// the estimate — the answer arrives degraded within the fetch budget.
func TestSlowPeerHonorsDeadline(t *testing.T) {
	fx := newClusterFixture(t)
	cfg := fastConfig()
	cfg.FetchDeadline = 5 * time.Millisecond
	cfg.MaxAttempts = 1
	h, err := NewHarness(fx.cat, fx.pool, 2, cfg)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	victim := h.Node(0)

	sched := faults.NewSchedule(1).Set(faults.NetSlowPeer, faults.Rule{})
	sched.SlowFactorDelay = time.Second
	faults.Arm(sched)
	defer faults.Disarm()

	start := time.Now()
	card, _ := victim.Estimate(ctx, fx.queries[0], robust.Config{})
	if math.IsNaN(card) || card < 0 {
		t.Fatalf("bad cardinality %v behind a slow peer", card)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("slow peer stalled the estimate for %v despite a 5ms fetch deadline", elapsed)
	}
}
