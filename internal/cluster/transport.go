package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"condsel/internal/faults"
)

// Transport moves shard frames between nodes. Implementations must honor
// the context (deadline and cancellation) and may fail with any error; the
// caller's retry/breaker/fallback machinery owns turning failures into
// degraded-but-answered estimates.
type Transport interface {
	// Fetch asks peer for its current shard frame on behalf of from.
	Fetch(ctx context.Context, from, peer NodeID) (*Frame, error)
}

// Sentinel transport errors. They surface (through errorReason) in the
// `remote-shard-unavailable: <peer>/<reason>` provenance, so they are short
// and stable.
var (
	ErrPartitioned = errors.New("partitioned")
	ErrBreakerOpen = errors.New("breaker-open")
	ErrUnknownPeer = errors.New("unknown-peer")
)

// MemTransport is the in-process transport of the multi-node harness:
// every fetch round-trips through the real wire codec (encode on the
// serving node, decode on the caller) so torn streams and checksum damage
// exercise the exact bytes a TCP link would carry. Tests drive failure arcs
// two ways: explicit Partition/Heal calls for deterministic sequencing, and
// the schedule-driven faults points (NetPartition, NetSlowPeer,
// NetTruncatedStream, NetStaleEpoch, NetDuplicateDelivery) for
// probabilistic soak-style runs.
type MemTransport struct {
	mu    sync.Mutex
	nodes map[NodeID]*Node
	cut   map[[2]NodeID]bool // symmetric partition set, normalized pairs
	// oldest and last retain served frame bytes per peer: oldest feeds the
	// stale-epoch replay fault, last the duplicate-delivery fault.
	oldest map[NodeID][]byte
	last   map[NodeID][]byte
}

// NewMemTransport returns an empty in-process transport.
func NewMemTransport() *MemTransport {
	return &MemTransport{
		nodes:  make(map[NodeID]*Node),
		cut:    make(map[[2]NodeID]bool),
		oldest: make(map[NodeID][]byte),
		last:   make(map[NodeID][]byte),
	}
}

// Register attaches a node to the transport.
func (t *MemTransport) Register(n *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[n.ID()] = n
}

func pairKey(a, b NodeID) [2]NodeID {
	if b < a {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Partition severs the (symmetric) link between a and b.
func (t *MemTransport) Partition(a, b NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut[pairKey(a, b)] = true
}

// Heal restores the link between a and b.
func (t *MemTransport) Heal(a, b NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.cut, pairKey(a, b))
}

// HealAll restores every link.
func (t *MemTransport) HealAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut = make(map[[2]NodeID]bool)
}

// Isolate severs every link touching the node.
func (t *MemTransport) Isolate(n NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for other := range t.nodes {
		if other != n {
			t.cut[pairKey(n, other)] = true
		}
	}
}

// Fetch implements Transport.
func (t *MemTransport) Fetch(ctx context.Context, from, peer NodeID) (*Frame, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	target, ok := t.nodes[peer]
	severed := t.cut[pairKey(from, peer)]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPeer, peer)
	}

	fs := faults.Active()
	if severed || fs.Fire(faults.NetPartition) {
		return nil, ErrPartitioned
	}
	if fs.Fire(faults.NetSlowPeer) {
		if err := sleepCtx(ctx, fs.SlowFactorDelay); err != nil {
			return nil, err
		}
	}

	frame, err := target.ShardFrame()
	if err != nil {
		return nil, err
	}
	wire, err := EncodeFrame(frame)
	if err != nil {
		return nil, err
	}

	t.mu.Lock()
	if _, ok := t.oldest[peer]; !ok {
		t.oldest[peer] = wire
	}
	if fs.Fire(faults.NetStaleEpoch) {
		wire = t.oldest[peer]
	} else if prev, ok := t.last[peer]; ok && fs.Fire(faults.NetDuplicateDelivery) {
		wire = prev
	}
	t.last[peer] = wire
	t.mu.Unlock()

	if fs.Fire(faults.NetTruncatedStream) {
		wire = wire[:len(wire)/2]
	}
	return ReadFrame(bytes.NewReader(wire))
}

// sleepCtx waits d or until the context is done, whichever first — the
// sanctioned ctx-aware wait (ctxflow forbids blind time.Sleep on request
// paths).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
