package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBreakerTripAndHalfOpen: threshold consecutive failures trip the
// breaker; after the cooldown exactly one half-open probe is admitted; its
// outcome closes or re-trips.
func TestBreakerTripAndHalfOpen(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("refused below threshold (failure %d)", i)
		}
		b.Failure()
	}
	if b.Tripped() {
		t.Fatal("tripped below threshold")
	}
	b.Failure() // third consecutive failure
	if !b.Tripped() {
		t.Fatal("not tripped at threshold")
	}
	if b.Allow() {
		t.Fatal("allowed during cooldown")
	}

	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open probe refused after cooldown")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Failure() // probe failed: re-trip
	if b.Allow() {
		t.Fatal("allowed right after failed probe")
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("Trips = %d, want 2", got)
	}

	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("second half-open probe refused")
	}
	b.Success()
	if b.Tripped() {
		t.Fatal("still tripped after successful probe")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refuses")
	}
}

// TestBreakerCancelProbe: a half-open probe whose call ends without a
// definitive outcome is released, not leaked — the next Allow admits a
// fresh probe instead of refusing the peer forever.
func TestBreakerCancelProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(2, time.Second, clk.now)
	b.Failure()
	b.Failure()
	if !b.Tripped() {
		t.Fatal("not tripped at threshold")
	}
	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open probe refused after cooldown")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.CancelProbe()
	if !b.Allow() {
		t.Fatal("probe leaked: Allow refuses after CancelProbe")
	}
	b.Success()
	if b.Tripped() {
		t.Fatal("still tripped after successful probe")
	}
	// On a closed breaker CancelProbe is a no-op.
	b.CancelProbe()
	if !b.Allow() {
		t.Fatal("closed breaker refuses after CancelProbe")
	}
}

// TestBreakerSuccessResetsCount: interleaved successes keep the failure
// count from accumulating across healthy calls.
func TestBreakerSuccessResetsCount(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if b.Tripped() {
		t.Fatal("tripped although failures never ran consecutively to threshold")
	}
}
