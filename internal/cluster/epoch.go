package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Epoch persistence. Fencing only works if a node's epoch survives the
// node: stamps are compared lexicographically (epoch first), and pool
// generations restart with the process, so a restarted node that comes
// back with epoch 1 and a small fresh generation is NOT strictly newer
// than the e1/g-large stamp peers admitted from its previous run — every
// frame it ships would be fenced as stale and peers would keep serving the
// pre-restart shard forever. EpochFile makes the epoch a durable restart
// counter: opening it restores the last recorded epoch, increments it (a
// restart IS a rebuild event) and persists the result with the same
// temp+fsync+rename discipline the lifecycle snapshots use, so the new
// run's stamps dominate everything the previous run ever shipped.
//
// Deployments that cannot mount a state dir must instead supply a
// strictly increasing Config.Epoch themselves (e.g. from a deploy
// counter); leaving it zero on every boot re-introduces the fence-out.

// epochFileName is the epoch file's base name inside the state dir.
const epochFileName = "EPOCH"

// epochMagic opens the file; the single value follows on the same line.
const epochMagic = "SITEPOCH"

// EpochFile durably tracks one node's rebuild epoch in a state directory.
type EpochFile struct {
	path string
}

// OpenEpochFile restores the epoch recorded under dir (zero when the file
// does not exist yet), increments it and durably stores the result,
// returning the epoch this run must stamp its frames with. A corrupt or
// unreadable epoch file is an error — silently restarting from epoch 1
// would be exactly the fence-out the file exists to prevent.
func OpenEpochFile(dir string) (*EpochFile, uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("cluster: epoch dir: %w", err)
	}
	f := &EpochFile{path: filepath.Join(dir, epochFileName)}
	prev, err := f.load()
	if err != nil {
		return nil, 0, err
	}
	epoch := prev + 1
	if err := f.Store(epoch); err != nil {
		return nil, 0, err
	}
	return f, epoch, nil
}

// load reads the recorded epoch; a missing file is epoch zero.
func (f *EpochFile) load() (uint64, error) {
	data, err := os.ReadFile(f.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("cluster: reading epoch file: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) != 2 || fields[0] != epochMagic {
		return 0, fmt.Errorf("cluster: epoch file %s is corrupt: %q", f.path, string(data))
	}
	epoch, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: epoch file %s is corrupt: %w", f.path, err)
	}
	return epoch, nil
}

// Store durably records the epoch: temp file, fsync, rename, directory
// sync — the same publish discipline as the lifecycle snapshots, so a
// crash mid-store leaves the previous epoch readable and the next boot
// still increments past it.
func (f *EpochFile) Store(epoch uint64) error {
	tmp := f.path + ".tmp"
	file, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: epoch temp: %w", err)
	}
	_, err = fmt.Fprintf(file, "%s %d\n", epochMagic, epoch)
	if err == nil {
		err = file.Sync()
	}
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: epoch write: %w", err)
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: epoch publish: %w", err)
	}
	if d, err := os.Open(filepath.Dir(f.path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
