package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport: the cross-process form of the replication protocol that
// cmd/sitnode speaks. One fetch is one short-lived connection — the client
// dials under its context deadline, sends a request frame (its own id and
// stamp, empty payload) and reads back the peer's shard frame. No
// connection pooling: shard fetches are rare (warm-up, post-rebuild
// re-replication, partition recovery), and one-shot connections make the
// failure model trivial — any broken link is one failed fetch, retried by
// the caller's backoff/breaker machinery.

// TCPTransport implements Transport over real sockets given a peer address
// book.
type TCPTransport struct {
	mu    sync.Mutex
	addrs map[NodeID]string
}

// NewTCPTransport returns a transport over the address book (peer id →
// host:port).
func NewTCPTransport(addrs map[NodeID]string) *TCPTransport {
	book := make(map[NodeID]string, len(addrs))
	for id, a := range addrs {
		book[id] = a
	}
	return &TCPTransport{addrs: book}
}

// SetAddr adds or updates one peer address.
func (t *TCPTransport) SetAddr(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[id] = addr
}

// Fetch implements Transport: dial, send a request frame, read the shard.
func (t *TCPTransport) Fetch(ctx context.Context, from, peer NodeID) (*Frame, error) {
	t.mu.Lock()
	addr, ok := t.addrs[peer]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPeer, peer)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return nil, err
		}
	}
	if err := WriteFrame(conn, &Frame{Node: from}); err != nil {
		return nil, fmt.Errorf("cluster: sending request to %s: %w", peer, err)
	}
	frame, err := ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading shard from %s: %w", peer, err)
	}
	return frame, nil
}

// connTimeout bounds one inbound replication exchange on the serving side.
const connTimeout = 30 * time.Second

// ServeReplication answers shard fetches on the listener until ctx is
// done. Each connection is handled in its own goroutine; the accept loop
// exits when the listener is closed (a watcher goroutine closes it on
// ctx.Done, which is also each handler's exit path via connection
// deadlines). The method returns nil on context cancellation, the accept
// error otherwise.
func (n *Node) ServeReplication(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	// done releases the watcher when ServeReplication returns for a reason
	// other than ctx — an accept error with a live context — so the
	// deferred wg.Wait cannot deadlock on it. Closed after wg.Wait is
	// deferred: defers run LIFO, so the watcher is released first.
	done := make(chan struct{})
	defer close(done)
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.handleReplication(ctx, conn)
		}()
	}
}

// handleReplication answers one inbound fetch.
func (n *Node) handleReplication(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	deadline := n.cfg.Now().Add(connTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return
	}
	// The request frame identifies the caller; its payload is defined to be
	// empty, and the cap-0 read enforces that before allocating — the
	// listener is unauthenticated, so a declared payload length must not
	// buy an attacker a 64 MiB allocation. A malformed request is dropped —
	// the client's read then fails and its retry machinery owns the rest.
	if _, err := ReadFrameLimit(conn, 0); err != nil {
		return
	}
	frame, err := n.ShardFrame()
	if err != nil {
		return
	}
	_ = WriteFrame(conn, frame)
}
