package cluster

import "testing"

// TestStampNewer: fencing order is lexicographic (epoch, gen); equal is not
// newer.
func TestStampNewer(t *testing.T) {
	cases := []struct {
		s, o Stamp
		want bool
	}{
		{Stamp{2, 1}, Stamp{1, 99}, true},  // higher epoch dominates any gen
		{Stamp{1, 99}, Stamp{2, 1}, false}, // lower epoch never wins
		{Stamp{1, 5}, Stamp{1, 4}, true},   // same epoch: gen decides
		{Stamp{1, 4}, Stamp{1, 5}, false},  // older gen
		{Stamp{1, 5}, Stamp{1, 5}, false},  // equal is not newer
		{Stamp{1, 1}, Stamp{}, true},       // anything beats the zero stamp
		{Stamp{}, Stamp{}, false},          // zero vs zero
	}
	for _, c := range cases {
		if got := c.s.Newer(c.o); got != c.want {
			t.Errorf("Stamp%v.Newer(%v) = %v, want %v", c.s, c.o, got, c.want)
		}
	}
}

// TestGenVectorFences: Admit accepts strictly newer stamps only, counts
// rejections, and a refused stamp changes nothing.
func TestGenVectorFences(t *testing.T) {
	v := NewGenVector()
	if !v.Admit("b", Stamp{1, 10}) {
		t.Fatal("first stamp refused")
	}
	if v.Admit("b", Stamp{1, 10}) {
		t.Fatal("duplicate stamp admitted")
	}
	if v.Admit("b", Stamp{1, 9}) {
		t.Fatal("older gen admitted")
	}
	if v.Admit("b", Stamp{0, 99}) {
		t.Fatal("older epoch admitted despite higher gen")
	}
	if got := v.Get("b"); got != (Stamp{1, 10}) {
		t.Fatalf("rejections moved the admitted stamp to %v", got)
	}
	if !v.Admit("b", Stamp{2, 1}) {
		t.Fatal("epoch bump refused")
	}
	if got := v.Rejected(); got != 3 {
		t.Fatalf("Rejected = %d, want 3", got)
	}
	snap := v.Snapshot()
	if len(snap) != 1 || snap[0].Node != "b" || snap[0].Stamp != (Stamp{2, 1}) {
		t.Fatalf("Snapshot = %+v", snap)
	}
}
