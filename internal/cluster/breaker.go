package cluster

import (
	"sync"
	"time"
)

// Per-peer circuit breaker. A partitioned peer must not cost every estimate
// a fetch deadline: after Threshold consecutive failures the breaker trips
// and Allow refuses instantly (the caller answers from the local ladder
// with provenance) until Cooldown has passed, at which point exactly one
// half-open probe is let through. A successful probe closes the breaker;
// a failed one re-trips it for another cooldown.
//
// The clock is injected so tests and the bench harness drive trip/heal arcs
// deterministically without real waiting.

// Default breaker tuning (used when Config leaves the fields zero).
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2 * time.Second
)

// Breaker is a failure-counting circuit breaker. The zero value is not
// usable; create with newBreaker.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu      sync.Mutex
	fails   int       // consecutive failures while closed
	tripped bool      // open (or half-open) state
	until   time.Time // end of the current cooldown window
	probing bool      // the single half-open probe is in flight
	trips   int64     // cumulative trips, for gauges
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call to the peer may proceed. While open it
// refuses until the cooldown elapses, then admits a single half-open probe;
// further calls keep being refused until that probe reports Success or
// Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.tripped {
		return true
	}
	if b.probing || b.now().Before(b.until) {
		return false
	}
	b.probing = true
	return true
}

// Success records a successful call, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.tripped = false
	b.probing = false
}

// CancelProbe releases an in-flight half-open probe whose call ended
// without a definitive outcome — the caller's context died or the frame
// was fenced as a stale replay, neither of which says anything about the
// peer's reachability. The breaker stays in its current state (open stays
// open, with the already-elapsed cooldown), so the next Allow can admit a
// fresh probe instead of refusing forever. A no-op when no probe is
// pending.
func (b *Breaker) CancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Failure records a failed call. Threshold consecutive failures — or one
// failed half-open probe — trip (re-trip) the breaker for a cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tripped {
		// The half-open probe failed: restart the cooldown.
		b.probing = false
		b.until = b.now().Add(b.cooldown)
		b.trips++
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.tripped = true
		b.probing = false
		b.until = b.now().Add(b.cooldown)
		b.trips++
	}
}

// Tripped reports whether the breaker is currently open.
func (b *Breaker) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripped
}

// Trips returns the cumulative trip count.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
