package cluster

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestEpochFileCountsRestarts: every OpenEpochFile restores the recorded
// epoch and increments past it — the durable restart counter fencing
// depends on.
func TestEpochFileCountsRestarts(t *testing.T) {
	dir := t.TempDir()
	for want := uint64(1); want <= 3; want++ {
		_, got, err := OpenEpochFile(dir)
		if err != nil {
			t.Fatalf("OpenEpochFile #%d: %v", want, err)
		}
		if got != want {
			t.Fatalf("boot %d restored epoch %d", want, got)
		}
	}
	// A RebuildLocal-driven Store advances what the next boot sees.
	f, _, err := OpenEpochFile(dir)
	if err != nil {
		t.Fatalf("OpenEpochFile: %v", err)
	}
	if err := f.Store(10); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if _, got, err := OpenEpochFile(dir); err != nil || got != 11 {
		t.Fatalf("boot after Store(10) = (%d, %v), want (11, nil)", got, err)
	}
}

// TestEpochFileCorruptIsError: a damaged epoch file must refuse to open —
// silently restarting from epoch 1 is exactly the fence-out the file
// prevents.
func TestEpochFileCorruptIsError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, epochFileName), []byte("garbage\n"), 0o644); err != nil {
		t.Fatalf("seeding corrupt file: %v", err)
	}
	if _, _, err := OpenEpochFile(dir); err == nil {
		t.Fatal("corrupt epoch file opened without error")
	}
}

// TestRebuildLocalPersistsEpochViaSink: RebuildLocal hands the bumped
// epoch to the configured sink before the new stamp can be served.
func TestRebuildLocalPersistsEpochViaSink(t *testing.T) {
	fx := newClusterFixture(t)
	var sunk []uint64
	cfg := fastConfig()
	cfg.Self = "node-0"
	cfg.Nodes = HarnessIDs(1)
	cfg.Epoch = 5
	cfg.EpochSink = func(e uint64) { sunk = append(sunk, e) }
	n, err := NewNode(cfg, fx.cat, fx.pool, NewMemTransport())
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if got := n.Stamp().Epoch; got != 5 {
		t.Fatalf("starting epoch = %d, want the configured 5", got)
	}
	n.RebuildLocal(fx.pool)
	if len(sunk) != 1 || sunk[0] != 6 {
		t.Fatalf("EpochSink observed %v, want [6]", sunk)
	}
	if got := n.Stamp().Epoch; got != 6 {
		t.Fatalf("epoch after rebuild = %d, want 6", got)
	}
}

// TestRestartWithPersistedEpochReadmitted: a node that restarts with its
// persisted (incremented) epoch is admitted by peers that fenced on its
// previous run — the epoch half of the stamp dominates, so the reset pool
// generation is irrelevant. Without persistence the restarted node would
// reuse epoch 1 and typically never be strictly newer again.
func TestRestartWithPersistedEpochReadmitted(t *testing.T) {
	fx := newClusterFixture(t)
	h, err := NewHarness(fx.cat, fx.pool, 2, fastConfig())
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ctx := context.Background()
	observer, restarting := h.Node(0), h.Node(1)

	dir := t.TempDir()
	// First boot: the fresh EpochFile yields 1, matching the harness node.
	if _, e, err := OpenEpochFile(dir); err != nil || e != 1 {
		t.Fatalf("first boot epoch = (%d, %v), want (1, nil)", e, err)
	}
	if err := observer.Replicate(ctx, restarting.ID()); err != nil {
		t.Fatalf("replicate before restart: %v", err)
	}
	admitted := observer.vec.Get(restarting.ID())

	// "Restart": a brand-new Node over the same shard, its epoch restored
	// and incremented from the state dir.
	_, e2, err := OpenEpochFile(dir)
	if err != nil {
		t.Fatalf("restart boot: %v", err)
	}
	cfg := fastConfig()
	cfg.Self = restarting.ID()
	cfg.Nodes = h.IDs
	cfg.Epoch = e2
	reborn, err := NewNode(cfg, fx.cat, h.Ring.Shard(fx.pool, restarting.ID()), h.Transport)
	if err != nil {
		t.Fatalf("NewNode(reborn): %v", err)
	}
	h.Transport.Register(reborn) // takes over the identity on the transport

	if err := observer.Replicate(ctx, restarting.ID()); err != nil {
		t.Fatalf("restarted node with persisted epoch fenced out: %v", err)
	}
	got := observer.vec.Get(restarting.ID())
	if got.Epoch != Epoch(e2) {
		t.Fatalf("admitted epoch %d after restart, want %d", got.Epoch, e2)
	}
	if !got.Newer(admitted) {
		t.Fatalf("restarted stamp %s is not newer than pre-restart %s", got, admitted)
	}
}
