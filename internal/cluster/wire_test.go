package cluster

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func mustFrameBytes(t testing.TB, f *Frame) []byte {
	t.Helper()
	b, err := EncodeFrame(f)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	return b
}

// TestWireRoundTrip: encode → decode returns the identical frame, and the
// canonical encoding is stable.
func TestWireRoundTrip(t *testing.T) {
	f := &Frame{Node: "node-1", Stamp: Stamp{Epoch: 3, Gen: 42}, Payload: []byte(`{"version":1}`)}
	wire := mustFrameBytes(t, f)
	got, err := ReadFrame(bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Node != f.Node || got.Stamp != f.Stamp || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mutated the frame: %+v vs %+v", got, f)
	}
	if re := mustFrameBytes(t, got); !bytes.Equal(re, wire) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

// TestWireRejectsTruncation: the decoder errors (never panics, never
// accepts) at every possible truncation point.
func TestWireRejectsTruncation(t *testing.T) {
	wire := mustFrameBytes(t, &Frame{Node: "n", Stamp: Stamp{1, 1}, Payload: []byte("payload-bytes")})
	for cut := 0; cut < len(wire); cut++ {
		if _, err := ReadFrame(bytes.NewReader(wire[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(wire))
		}
	}
}

// TestWireRejectsCorruption: any single flipped byte is refused — magic,
// version, lengths and payload are all covered by structural checks or the
// CRC. (Flips confined to the stamp bytes decode fine — the stamp is
// fenced by the generation vector, not the codec — so those offsets are
// skipped.)
func TestWireRejectsCorruption(t *testing.T) {
	f := &Frame{Node: "node-2", Stamp: Stamp{Epoch: 7, Gen: 9}, Payload: []byte(`{"version":1,"sits":[]}`)}
	wire := mustFrameBytes(t, f)
	const stampStart, stampEnd = 5, 21 // epoch+gen field region
	for i := 0; i < len(wire); i++ {
		if i >= stampStart && i < stampEnd {
			continue
		}
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0x40
		got, err := ReadFrame(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// A flip the decoder accepted must not have changed what the
		// sender checksummed (e.g. a flip in the node-id also flips the
		// id it reports — structural fields are covered by re-encoding).
		if bytes.Equal(mustFrameBytes(t, got), wire) {
			t.Fatalf("flip at byte %d silently accepted with original content", i)
		}
	}
}

// TestWireRejectsOversizedLengths: length fields past the caps are refused
// before any allocation of that size.
func TestWireRejectsOversizedLengths(t *testing.T) {
	wire := mustFrameBytes(t, &Frame{Node: "n", Stamp: Stamp{1, 1}, Payload: []byte("x")})
	// Node-id length field sits at offset 21.
	mut := append([]byte(nil), wire...)
	binary.BigEndian.PutUint16(mut[21:23], MaxNodeIDLen+1)
	if _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
		t.Fatal("oversized node-id length accepted")
	}
	// Payload length field sits right after the 1-byte node id.
	mut = append([]byte(nil), wire...)
	binary.BigEndian.PutUint32(mut[24:28], MaxFramePayload+1)
	if _, err := ReadFrame(bytes.NewReader(mut)); err == nil {
		t.Fatal("oversized payload length accepted")
	}
}

// TestReadFrameLimit: the per-call payload cap is checked against the
// declared length before any payload allocation, admits frames at or under
// it, and clamps to MaxFramePayload rather than widening past it.
func TestReadFrameLimit(t *testing.T) {
	empty := mustFrameBytes(t, &Frame{Node: "node-1", Stamp: Stamp{1, 1}})
	if _, err := ReadFrameLimit(bytes.NewReader(empty), 0); err != nil {
		t.Fatalf("empty-payload frame refused under cap 0: %v", err)
	}
	loaded := mustFrameBytes(t, &Frame{Node: "node-1", Stamp: Stamp{1, 1}, Payload: []byte("shard-bytes")})
	if _, err := ReadFrameLimit(bytes.NewReader(loaded), 0); err == nil {
		t.Fatal("cap-0 read accepted a frame with a payload")
	}
	if _, err := ReadFrameLimit(bytes.NewReader(loaded), len("shard-bytes")); err != nil {
		t.Fatalf("frame at exactly the cap refused: %v", err)
	}
	// The declared length alone must trigger the rejection: truncate the
	// stream right after the length fields so only the cap check can fire.
	hdrOnly := loaded[:4+1+8+8+2+len("node-1")+8]
	if _, err := ReadFrameLimit(bytes.NewReader(hdrOnly), 4); err == nil {
		t.Fatal("declared payload length over the cap accepted")
	}
	// Caps past MaxFramePayload clamp to it instead of widening the global
	// bound.
	huge := append([]byte(nil), loaded...)
	binary.BigEndian.PutUint32(huge[4+1+8+8+2+len("node-1"):], MaxFramePayload+1)
	if _, err := ReadFrameLimit(bytes.NewReader(huge), MaxFramePayload*2); err == nil {
		t.Fatal("cap above MaxFramePayload widened the global bound")
	}
}

// FuzzSnapshotWire hammers the wire decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode canonically to
// exactly the bytes it consumed (so a corrupt frame can never round-trip
// as valid).
func FuzzSnapshotWire(f *testing.F) {
	valid := func(node string, st Stamp, payload []byte) []byte {
		b, err := EncodeFrame(&Frame{Node: NodeID(node), Stamp: st, Payload: payload})
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		return b
	}
	full := valid("node-0", Stamp{Epoch: 2, Gen: 17}, []byte(`{"version":1,"sits":[{"attr":"t.a"}]}`))
	f.Add(full)
	f.Add(valid("n", Stamp{}, nil))
	f.Add(full[:len(full)/2]) // torn stream
	f.Add(full[:4+1+8+8+2])   // header only
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 0xff // payload corruption under an intact CRC
	f.Add(flipped)
	f.Add([]byte("SITW")) // bare magic
	f.Add([]byte{})       // empty stream

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected is always fine; panics fail the fuzzer by themselves
		}
		re, err := EncodeFrame(frame)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if len(re) > len(data) || !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("accepted frame re-encodes to different bytes than consumed")
		}
		again, err := ReadFrame(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("canonical re-encoding refused: %v", err)
		}
		if again.Node != frame.Node || again.Stamp != frame.Stamp || !bytes.Equal(again.Payload, frame.Payload) {
			t.Fatal("second decode disagrees with first")
		}
	})
}
