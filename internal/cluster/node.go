// Package cluster is the distributed statistics tier: SIT pools sharded
// across N nodes by (table, attribute) on a deterministic consistent-hash
// ring, replicated by shipping the checksummed SITSNAP pool payload over a
// length-prefixed wire codec, and fenced by per-node epochs plus a
// cluster-wide generation vector so a rebuilt pool on one node invalidates
// every remotely cached selectivity computed against its old shard.
//
// Robustness is the contract: estimation NEVER errors because a peer is
// slow, partitioned or recovering. A remote fetch runs under a per-call
// deadline with capped-exponential retry and deterministic jitter
// (lifecycle.Backoff); a per-peer failure-counting breaker trips
// partitioned peers out of the fetch path; and any shard that stays
// unreachable is answered by the local degradation ladder with
// `remote-shard-unavailable: <peer>/<reason>` provenance — fidelity
// degrades, availability does not, end to end through internal/serve.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"condsel/internal/core"
	"condsel/internal/engine"
	"condsel/internal/lifecycle"
	"condsel/internal/robust"
	"condsel/internal/sit"
)

// Default remote-call tuning (used when Config leaves the fields zero).
const (
	DefaultFetchDeadline = 200 * time.Millisecond
	DefaultMaxAttempts   = 3
	DefaultBackoffBase   = 5 * time.Millisecond
	DefaultBackoffCap    = 100 * time.Millisecond
)

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's identity; it must appear in Nodes.
	Self NodeID
	// Nodes is the full membership. Every node must be configured with the
	// same set (order irrelevant) — the ring is derived from it.
	Nodes []NodeID
	// VNodes is the virtual-node count per member (0: DefaultVNodes).
	VNodes int

	// Model is the estimation error model (nil: Diff, the paper's default).
	Model core.ErrorModel
	// Cache, when non-nil, is the cross-query selectivity cache shared by
	// the merged estimators. Entries are keyed by merged-pool generation,
	// so admitting a newer peer shard retires them (see installLocked).
	Cache *core.SelCacheStore

	// FetchDeadline bounds each remote fetch attempt (0: 200ms).
	FetchDeadline time.Duration
	// MaxAttempts is how many times one Replicate call tries a peer before
	// giving up (0: 3). Attempts after the first wait lifecycle.Backoff
	// with deterministic per-(seed,peer,attempt) jitter.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the retry schedule (0: 5ms/100ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the deterministic retry jitter.
	Seed int64

	// BreakerThreshold consecutive failures trip a peer's breaker for
	// BreakerCooldown (0: 3 and 2s). Now is the breaker clock (nil: real
	// time) — injectable so arcs are test-driven without waiting.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	Now              func() time.Time

	// Epoch is the node's starting rebuild epoch (0: 1). Epochs must be
	// strictly increasing across the node's lifetime INCLUDING restarts —
	// peers fence on (epoch, generation) and pool generations reset with
	// the process, so a restarted node that reuses an old epoch is fenced
	// out forever. Restore it from an EpochFile (which counts restarts
	// durably) or another monotonic source.
	Epoch uint64
	// EpochSink, when non-nil, is invoked synchronously with the new epoch
	// each time RebuildLocal bumps it, before any frame can carry the new
	// stamp — wire it to (*EpochFile).Store so the on-disk epoch never
	// falls behind the one peers have admitted.
	EpochSink func(uint64)
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Model == nil {
		c.Model = core.Diff{}
	}
	if c.FetchDeadline <= 0 {
		c.FetchDeadline = DefaultFetchDeadline
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = DefaultBackoffCap
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	return c
}

// replica is one peer's admitted shard.
type replica struct {
	stamp Stamp
	pool  *sit.Pool
}

// merged is the immutable estimation state the hot path reads with one
// atomic load: the merged pool (local shard + every admitted replica), its
// warmed estimator, and the precomputed set of peers with no admitted
// shard. When missing is empty — the steady state — Estimate costs exactly
// one atomic load more than a single-node ladder.
type merged struct {
	pool *sit.Pool
	est  *core.Estimator
	// ladder is the prebuilt zero-config degradation ladder: the steady
	// state answers through it without any per-call construction.
	ladder *robust.Estimator
	// missing lists peers with no admitted replica, sorted; missingSet is
	// the same as a set.
	missing    []NodeID
	missingSet map[NodeID]bool
}

// ladderFor returns the ladder configured with cfg, reusing the prebuilt
// one for the (overwhelmingly common) zero config.
func (m *merged) ladderFor(cfg robust.Config) *robust.Estimator {
	if cfg == (robust.Config{}) {
		return m.ladder
	}
	return robust.New(m.est, cfg)
}

// Node is one member of the distributed statistics tier. It owns the local
// shard, serves it to peers as wire frames, pulls and fences peer shards,
// and estimates over the merged pool with degraded-local fallback.
//
// Concurrency: Estimate and ShardFrame are safe for arbitrary concurrent
// use; Replicate may run concurrently with both and with itself;
// RebuildLocal serializes against Replicate internally.
type Node struct {
	cfg  Config
	cat  *engine.Catalog
	ring *Ring
	tr   Transport

	// epoch is this node's own rebuild epoch, bumped by RebuildLocal.
	epoch atomic.Uint64

	// mu guards local, replicas and merged-state installation. The hot
	// path never takes it — it loads cur.
	mu       sync.Mutex
	local    *sit.Pool
	replicas map[NodeID]*replica
	vec      *GenVector

	cur atomic.Pointer[merged]

	// breakers is created at construction and read-only after; each entry
	// is internally synchronized.
	breakers map[NodeID]*Breaker

	// counters
	replications atomic.Int64 // admitted peer frames
	replFailures atomic.Int64 // Replicate calls that gave up
	degraded     atomic.Int64 // estimates answered below full fidelity due to a missing shard
	retries      atomic.Int64 // fetch attempts beyond the first
}

// NewNode builds a node from its local shard. The shard should be
// ring.Shard(full, cfg.Self) — NewNode does not re-filter, so warm-start
// flows (recovering a shard from a SITSNAP checkpoint) can hand any pool.
func NewNode(cfg Config, cat *engine.Catalog, local *sit.Pool, tr Transport) (*Node, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, id := range ring.Nodes() {
		if id == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in membership %v", cfg.Self, cfg.Nodes)
	}
	if tr == nil {
		return nil, fmt.Errorf("cluster: nil transport")
	}
	n := &Node{
		cfg:      cfg,
		cat:      cat,
		ring:     ring,
		tr:       tr,
		local:    local,
		replicas: make(map[NodeID]*replica),
		vec:      NewGenVector(),
		breakers: make(map[NodeID]*Breaker),
	}
	n.epoch.Store(cfg.Epoch)
	for _, id := range ring.Nodes() {
		if id != cfg.Self {
			n.breakers[id] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now)
		}
	}
	n.mu.Lock()
	n.installLocked()
	n.mu.Unlock()
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.cfg.Self }

// Ring returns the node's ring view.
func (n *Node) Ring() *Ring { return n.ring }

// Stamp returns the node's current fencing stamp: its rebuild epoch and the
// local shard's content generation.
func (n *Node) Stamp() Stamp {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stamp{Epoch: Epoch(n.epoch.Load()), Gen: n.local.Generation()}
}

// MergedGeneration returns the content generation of the merged pool the
// hot path currently estimates over.
func (n *Node) MergedGeneration() uint64 { return n.cur.Load().pool.Generation() }

// MergedPool returns the merged pool the hot path currently estimates over
// (local shard plus admitted replicas). Callers must treat it as immutable —
// it is the published estimation state, replaced wholesale on every admit.
func (n *Node) MergedPool() *sit.Pool { return n.cur.Load().pool }

// ShardFrame encodes the local shard as a replication frame carrying the
// node's fencing stamp.
func (n *Node) ShardFrame() (*Frame, error) {
	n.mu.Lock()
	local := n.local
	stamp := Stamp{Epoch: Epoch(n.epoch.Load()), Gen: local.Generation()}
	n.mu.Unlock()
	var buf payloadBuffer
	if err := local.Encode(&buf); err != nil {
		return nil, fmt.Errorf("cluster: encoding shard: %w", err)
	}
	return &Frame{Node: n.cfg.Self, Stamp: stamp, Payload: buf.b}, nil
}

// payloadBuffer is a minimal growing write buffer (avoids importing bytes
// just for one sink).
type payloadBuffer struct{ b []byte }

func (p *payloadBuffer) Write(d []byte) (int, error) {
	p.b = append(p.b, d...)
	return len(d), nil
}

// RebuildLocal replaces the local shard wholesale and bumps the node's
// epoch — the fencing event: peers that admitted the old shard will see a
// strictly newer stamp on their next fetch, and any frame of the old epoch
// that is still in flight is refused by their fences.
func (n *Node) RebuildLocal(pool *sit.Pool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	epoch := n.epoch.Add(1)
	if n.cfg.EpochSink != nil {
		// Persist before the new stamp can leave the node: once a peer
		// admits it, a restart must come back with a higher epoch still.
		n.cfg.EpochSink(epoch)
	}
	n.local = pool
	n.installLocked()
}

// installLocked rebuilds the merged pool from the local shard plus every
// admitted replica and publishes it, retiring the previous merged
// generation from the caches. Callers hold n.mu.
func (n *Node) installLocked() {
	pool := sit.NewPool(n.cat)
	for _, s := range n.local.SITs() {
		pool.Add(s)
	}
	for _, s := range n.local.SITs2D() {
		pool.Add2D(s)
	}
	peers := make([]NodeID, 0, len(n.replicas))
	for id := range n.replicas {
		peers = append(peers, id)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, id := range peers {
		rep := n.replicas[id]
		for _, s := range rep.pool.SITs() {
			pool.Add(s)
		}
		for _, s := range rep.pool.SITs2D() {
			pool.Add2D(s)
		}
	}

	var missing []NodeID
	missingSet := make(map[NodeID]bool)
	for _, id := range n.ring.Nodes() {
		if id == n.cfg.Self {
			continue
		}
		if _, ok := n.replicas[id]; !ok {
			missing = append(missing, id)
			missingSet[id] = true
		}
	}

	est := core.NewEstimator(n.cat, pool, n.cfg.Model)
	if n.cfg.Cache != nil {
		est.Cache = n.cfg.Cache
	}
	prev := n.cur.Swap(&merged{
		pool: pool, est: est, ladder: robust.New(est, robust.Config{}),
		missing: missing, missingSet: missingSet,
	})
	if prev != nil {
		gen := prev.pool.Generation()
		if n.cfg.Cache != nil {
			n.cfg.Cache.EvictIf(func(k core.CacheKey) bool { return k.Gen == gen })
		}
		core.EvictHistJoinGeneration(gen)
	}
}

// Replicate fetches the peer's current shard, fences it against the
// generation vector and, when admitted, installs it into the merged pool.
// A frame equal to the admitted stamp is a no-op success (duplicate
// delivery); an older one is rejected by the fence and reported as an
// error without touching any state. Retries honor ctx and the per-peer
// breaker.
func (n *Node) Replicate(ctx context.Context, peer NodeID) error {
	return n.replicate(ctx, peer, n.cfg.MaxAttempts)
}

// replicate is Replicate with an explicit attempt budget: the anti-entropy
// and warm-up paths retry up to cfg.MaxAttempts, the estimate path fetches
// once (see Estimate).
func (n *Node) replicate(ctx context.Context, peer NodeID, attempts int) error {
	if peer == n.cfg.Self {
		return nil
	}
	br := n.breakers[peer]
	if br == nil {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, peer)
	}
	if !br.Allow() {
		return ErrBreakerOpen
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			n.retries.Add(1)
			d := lifecycle.Backoff(n.cfg.BackoffBase, n.cfg.BackoffCap, n.cfg.Seed, string(peer), attempt-1)
			if serr := sleepCtx(ctx, d); serr != nil {
				err = serr
				// The call ended without learning anything about the peer:
				// release a half-open probe so the breaker can probe again.
				br.CancelProbe()
				break
			}
		}
		var frame *Frame
		frame, err = n.fetchOnce(ctx, peer)
		if err == nil {
			err = n.admit(peer, frame)
		}
		if err == nil {
			br.Success()
			return nil
		}
		if errors.Is(err, errStaleFrame) || ctx.Err() != nil {
			// A fenced replay is not a connectivity failure — retrying the
			// same stale source is pointless, and the breaker should not
			// trip over it. A dead parent context ends the loop either way.
			// Neither outcome may strand an admitted half-open probe: if one
			// is in flight, release it so Allow recovers after the cooldown
			// instead of refusing the peer until process restart.
			br.CancelProbe()
			break
		}
		br.Failure()
		if br.Tripped() {
			break
		}
	}
	n.replFailures.Add(1)
	return err
}

// fetchOnce performs one transport fetch under the per-call deadline.
func (n *Node) fetchOnce(ctx context.Context, peer NodeID) (*Frame, error) {
	cctx, cancel := context.WithTimeout(ctx, n.cfg.FetchDeadline)
	defer cancel()
	frame, err := n.tr.Fetch(cctx, n.cfg.Self, peer)
	if err != nil {
		return nil, err
	}
	if frame.Node != peer {
		return nil, fmt.Errorf("cluster: frame from %q, want %q", frame.Node, peer)
	}
	return frame, nil
}

// errStaleFrame marks a frame the fence refused.
var errStaleFrame = errors.New("stale-epoch")

// admit fences and installs one fetched frame.
func (n *Node) admit(peer NodeID, frame *Frame) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur, have := n.replicas[peer]
	if have && frame.Stamp == cur.stamp {
		// Duplicate delivery of the admitted frame: idempotent no-op —
		// crucially, no generation bump, so caches stay warm.
		return nil
	}
	pool, err := frame.DecodePool(n.cat)
	if err != nil {
		return fmt.Errorf("decoding shard of %s: %w", peer, err)
	}
	if !n.vec.Admit(peer, frame.Stamp) {
		return fmt.Errorf("%w: frame %s from %s is not newer than admitted %s",
			errStaleFrame, frame.Stamp, peer, n.vec.Get(peer))
	}
	n.replicas[peer] = &replica{stamp: frame.Stamp, pool: pool}
	n.replications.Add(1)
	n.installLocked()
	return nil
}

// WarmUp replicates every peer once, returning the first error (the node
// remains usable — missing shards degrade, they do not disable).
func (n *Node) WarmUp(ctx context.Context) error {
	var first error
	for _, peer := range n.ring.Nodes() {
		if peer == n.cfg.Self {
			continue
		}
		if err := n.Replicate(ctx, peer); err != nil && first == nil {
			first = fmt.Errorf("warming %s: %w", peer, err)
		}
	}
	return first
}

// ReplicateLoop re-replicates every peer each interval until ctx is done —
// the anti-entropy tick that picks up a healed partition or a peer rebuild
// without waiting for a query to need the shard. Re-admitting an unchanged
// shard is a fenced no-op (same stamp), so a quiet cluster pays one fetch
// per peer per tick and zero generation churn. Errors are absorbed: an
// unreachable peer is the degraded-fallback path's job, not the loop's.
func (n *Node) ReplicateLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			for _, peer := range n.ring.Nodes() {
				if peer == n.cfg.Self {
					continue
				}
				_ = n.Replicate(ctx, peer)
			}
		}
	}
}

// Estimate answers the query through the degradation ladder over the
// node's merged statistics view. When every shard is admitted — the steady
// state — the cost over a single-node ladder is one atomic load. When
// shards are missing, Estimate first tries to replicate the owners the
// query actually needs, spending at most ONE fetch attempt per owner (the
// per-call deadline, no backoff retries — the anti-entropy loop owns
// retrying, a query's latency budget does not); owners that stay
// unreachable cap the ladder at the GVM tier with
// `remote-shard-unavailable: <peer>/<reason>` provenance, so the answer
// comes from local statistics rather than an error. Estimate never fails:
// the contract of robust.Estimator carries through unchanged.
func (n *Node) Estimate(ctx context.Context, q *engine.Query, cfg robust.Config) (float64, robust.Provenance) {
	ms, cfg := n.fetchMissing(ctx, q, cfg)
	return ms.ladderFor(cfg).Cardinality(ctx, q)
}

// Selectivity is Estimate for a predicate subset; same contract.
func (n *Node) Selectivity(ctx context.Context, q *engine.Query, set engine.PredSet, cfg robust.Config) (float64, robust.Provenance) {
	ms, cfg := n.fetchMissing(ctx, q, cfg)
	return ms.ladderFor(cfg).Selectivity(ctx, q, set)
}

// fetchMissing performs the estimate path's bounded on-demand replication:
// one fetch attempt per missing owner the query needs, degradation
// provenance for each that stays unreachable. It returns the view to
// estimate over and the (possibly capped) ladder config.
func (n *Node) fetchMissing(ctx context.Context, q *engine.Query, cfg robust.Config) (*merged, robust.Config) {
	ms := n.cur.Load()
	if len(ms.missing) == 0 {
		return ms, cfg
	}
	peers := n.neededPeers(q, ms)
	if len(peers) == 0 {
		return ms, cfg
	}
	for _, peer := range peers {
		if err := n.replicate(ctx, peer, 1); err != nil {
			cfg = cfg.Cap(robust.TierGVM, robust.RemoteUnavailableReason(string(peer), errorReason(err)))
			n.degraded.Add(1)
		}
	}
	return n.cur.Load(), cfg // successful replications installed a new view
}

// neededPeers returns, sorted, the currently missing shard owners the
// query's attributes hash to.
func (n *Node) neededPeers(q *engine.Query, ms *merged) []NodeID {
	var peers []NodeID
	seen := make(map[NodeID]bool)
	for _, p := range q.Preds {
		for _, attr := range predAttrs(p) {
			owner := n.ring.OwnerOfAttr(n.cat, attr)
			if owner != n.cfg.Self && ms.missingSet[owner] && !seen[owner] {
				seen[owner] = true
				peers = append(peers, owner)
			}
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// predAttrs lists the attributes a predicate touches.
func predAttrs(p engine.Pred) []engine.AttrID {
	if p.IsJoin() {
		return []engine.AttrID{p.Left, p.Right}
	}
	return []engine.AttrID{p.Attr}
}

// errorReason compresses a replication error to the short cause recorded
// in provenance: sentinel errors keep their name, context errors map to
// "deadline"/"canceled", anything else becomes "fetch-failed".
func errorReason(err error) string {
	switch {
	case errors.Is(err, ErrPartitioned):
		return "partitioned"
	case errors.Is(err, ErrBreakerOpen):
		return "breaker-open"
	case errors.Is(err, errStaleFrame):
		return "stale-epoch"
	case errors.Is(err, ErrUnknownPeer):
		return "unknown-peer"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "fetch-failed"
	}
}

// Counters is a point-in-time snapshot of the node's cluster state for
// gauges and reports.
type Counters struct {
	Nodes            int    // membership size
	PeersAdmitted    int    // peers with an admitted replica
	PeersMissing     int    // peers with no admitted replica
	PeersTripped     int    // peers whose breaker is currently open
	Epoch            uint64 // this node's rebuild epoch
	LocalGeneration  uint64 // local shard content generation
	MergedGeneration uint64 // merged pool content generation
	Replications     int64  // admitted peer frames
	ReplFailures     int64  // replicate calls that gave up
	FenceRejections  int64  // frames refused by the generation vector
	Degraded         int64  // estimates degraded by an unreachable shard
	Retries          int64  // fetch retries beyond first attempts
	BreakerTrips     int64  // cumulative breaker trips across peers
}

// Counters returns the snapshot.
func (n *Node) Counters() Counters {
	ms := n.cur.Load()
	n.mu.Lock()
	admitted := len(n.replicas)
	localGen := n.local.Generation()
	n.mu.Unlock()
	c := Counters{
		Nodes:            len(n.ring.Nodes()),
		PeersAdmitted:    admitted,
		PeersMissing:     len(ms.missing),
		Epoch:            n.epoch.Load(),
		LocalGeneration:  localGen,
		MergedGeneration: ms.pool.Generation(),
		Replications:     n.replications.Load(),
		ReplFailures:     n.replFailures.Load(),
		FenceRejections:  n.vec.Rejected(),
		Degraded:         n.degraded.Load(),
		Retries:          n.retries.Load(),
	}
	for _, br := range n.breakers {
		if br.Tripped() {
			c.PeersTripped++
		}
		c.BreakerTrips += br.Trips()
	}
	return c
}
