package cluster

import (
	"context"
	"fmt"

	"condsel/internal/engine"
	"condsel/internal/sit"
)

// Harness is the in-process multi-node cluster tests and benches drive
// through partition → heal → re-replicate → fence arcs: N nodes over one
// MemTransport, each owning its ring shard of a full statistics pool.
type Harness struct {
	Cat       *engine.Catalog
	Full      *sit.Pool
	Ring      *Ring
	Transport *MemTransport
	IDs       []NodeID
	Nodes     map[NodeID]*Node
}

// HarnessIDs returns the conventional membership node-0..node-(n-1).
func HarnessIDs(n int) []NodeID {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("node-%d", i))
	}
	return ids
}

// NewHarness shards full across n nodes and wires them to a shared
// MemTransport. The template config supplies tuning (deadline, retries,
// breaker, seed, cache, model); Self and Nodes are filled in per node.
func NewHarness(cat *engine.Catalog, full *sit.Pool, n int, template Config) (*Harness, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: harness needs at least one node")
	}
	ids := HarnessIDs(n)
	ring, err := NewRing(ids, template.VNodes)
	if err != nil {
		return nil, err
	}
	tr := NewMemTransport()
	h := &Harness{
		Cat: cat, Full: full, Ring: ring, Transport: tr,
		IDs: ids, Nodes: make(map[NodeID]*Node, n),
	}
	for _, id := range ids {
		cfg := template
		cfg.Self = id
		cfg.Nodes = ids
		node, err := NewNode(cfg, cat, ring.Shard(full, id), tr)
		if err != nil {
			return nil, err
		}
		tr.Register(node)
		h.Nodes[id] = node
	}
	return h, nil
}

// WarmAll replicates every peer into every node, returning the first error.
func (h *Harness) WarmAll(ctx context.Context) error {
	var first error
	for _, id := range h.IDs {
		if err := h.Nodes[id].WarmUp(ctx); err != nil && first == nil {
			first = fmt.Errorf("node %s: %w", id, err)
		}
	}
	return first
}

// Node returns the node by index in ID order.
func (h *Harness) Node(i int) *Node { return h.Nodes[h.IDs[i]] }
