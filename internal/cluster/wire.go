package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"condsel/internal/engine"
	"condsel/internal/sit"
)

// Wire codec. Shard replication ships the existing SITSNAP pool payload
// (sit.Pool.Encode JSON — the same bytes the lifecycle checkpointer
// checksums to disk) inside one length-prefixed, CRC-protected frame:
//
//	magic   [4]byte  "SITW"
//	version uint8    1
//	epoch   uint64   sender's rebuild epoch        (big-endian)
//	gen     uint64   shard pool content generation (big-endian)
//	nodeLen uint16   sender id length              (big-endian)
//	node    []byte   sender id (<= MaxNodeIDLen)
//	payLen  uint32   payload length                (big-endian, <= MaxFramePayload)
//	crc     uint32   CRC-32 (IEEE) of payload      (big-endian)
//	payload []byte
//
// The decoder trusts nothing: a wrong magic, an unknown version, a length
// past the caps, a short read or a CRC mismatch is an error, never a panic
// and never an accepted frame — the property FuzzSnapshotWire hammers. A
// frame read back always re-encodes to the identical bytes, so replication
// can be proxied or store-and-forwarded without silent mutation.

const (
	// wireMagic opens every frame.
	wireMagic = "SITW"
	// wireVersion is the frame layout version.
	wireVersion = 1
	// MaxNodeIDLen bounds the sender id carried per frame.
	MaxNodeIDLen = 256
	// MaxFramePayload bounds the shard payload, guarding the decoder
	// against length-overflow allocation attacks (a grown 100+-table pool
	// serializes to a few MB; 64 MiB is far above any real shard).
	MaxFramePayload = 64 << 20
)

// Frame is one replication message: the sender, its fencing stamp, and the
// shard pool payload (sit.Pool.Encode bytes). Request frames carry an empty
// payload.
type Frame struct {
	Node    NodeID
	Stamp   Stamp
	Payload []byte
}

// WriteFrame encodes the frame onto w.
func WriteFrame(w io.Writer, f *Frame) error {
	if len(f.Node) == 0 || len(f.Node) > MaxNodeIDLen {
		return fmt.Errorf("cluster: frame node id length %d out of range [1,%d]", len(f.Node), MaxNodeIDLen)
	}
	if len(f.Payload) > MaxFramePayload {
		return fmt.Errorf("cluster: frame payload %d bytes exceeds %d", len(f.Payload), MaxFramePayload)
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(wireMagic)
	bw.WriteByte(wireVersion)
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(f.Stamp.Epoch))
	bw.Write(hdr[:])
	binary.BigEndian.PutUint64(hdr[:], f.Stamp.Gen)
	bw.Write(hdr[:])
	binary.BigEndian.PutUint16(hdr[:2], uint16(len(f.Node)))
	bw.Write(hdr[:2])
	bw.WriteString(string(f.Node))
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(f.Payload)))
	bw.Write(hdr[:4])
	binary.BigEndian.PutUint32(hdr[:4], crc32.ChecksumIEEE(f.Payload))
	bw.Write(hdr[:4])
	bw.Write(f.Payload)
	return bw.Flush()
}

// EncodeFrame renders the frame to a byte slice.
func EncodeFrame(f *Frame) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadFrame decodes one frame from r. Every malformation — truncation
// anywhere, an oversized length, a checksum mismatch — returns an error;
// the function never panics and never returns a frame whose payload bytes
// were not exactly checksummed by the sender.
func ReadFrame(r io.Reader) (*Frame, error) {
	return ReadFrameLimit(r, MaxFramePayload)
}

// ReadFrameLimit is ReadFrame with a caller-chosen payload cap, checked
// against the declared length BEFORE any payload allocation. Readers of
// frames that are defined to be small — the replication listener's request
// frames carry an empty payload — pass a tight cap so an unauthenticated
// sender cannot spend a declared length as a MaxFramePayload-sized
// allocation. Caps above MaxFramePayload are clamped to it.
func ReadFrameLimit(r io.Reader, maxPayload int) (*Frame, error) {
	if maxPayload < 0 || maxPayload > MaxFramePayload {
		maxPayload = MaxFramePayload
	}
	var fixed [4 + 1 + 8 + 8 + 2]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("cluster: frame header: %w", noEOF(err))
	}
	if string(fixed[:4]) != wireMagic {
		return nil, fmt.Errorf("cluster: bad frame magic %q", fixed[:4])
	}
	if fixed[4] != wireVersion {
		return nil, fmt.Errorf("cluster: unsupported frame version %d", fixed[4])
	}
	stamp := Stamp{
		Epoch: Epoch(binary.BigEndian.Uint64(fixed[5:13])),
		Gen:   binary.BigEndian.Uint64(fixed[13:21]),
	}
	nodeLen := int(binary.BigEndian.Uint16(fixed[21:23]))
	if nodeLen == 0 || nodeLen > MaxNodeIDLen {
		return nil, fmt.Errorf("cluster: frame node id length %d out of range [1,%d]", nodeLen, MaxNodeIDLen)
	}
	node := make([]byte, nodeLen)
	if _, err := io.ReadFull(r, node); err != nil {
		return nil, fmt.Errorf("cluster: frame node id: %w", noEOF(err))
	}
	var tail [8]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("cluster: frame lengths: %w", noEOF(err))
	}
	payLen := binary.BigEndian.Uint32(tail[:4])
	wantCRC := binary.BigEndian.Uint32(tail[4:])
	if uint64(payLen) > uint64(maxPayload) {
		return nil, fmt.Errorf("cluster: frame payload %d bytes exceeds %d", payLen, maxPayload)
	}
	payload := make([]byte, int(payLen))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("cluster: frame payload: %w", noEOF(err))
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("cluster: frame checksum mismatch: got %08x want %08x", got, wantCRC)
	}
	return &Frame{Node: NodeID(node), Stamp: stamp, Payload: payload}, nil
}

// noEOF maps a bare io.EOF mid-frame to io.ErrUnexpectedEOF: from the
// decoder's point of view the stream ended inside a frame either way, and
// callers must never mistake it for a clean end-of-stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// DecodePool materializes the frame's payload as a statistics pool against
// the catalog.
func (f *Frame) DecodePool(cat *engine.Catalog) (*sit.Pool, error) {
	return sit.ReadPool(cat, bytes.NewReader(f.Payload))
}
