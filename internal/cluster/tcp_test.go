package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"condsel/internal/robust"
)

// TestTCPReplication: two nodes over real loopback sockets — each serves
// its shard with ServeReplication, fetches the peer's via TCPTransport,
// and the warmed pair answers like a single node; context cancellation
// shuts both servers down cleanly.
func TestTCPReplication(t *testing.T) {
	fx := newClusterFixture(t)
	ids := HarnessIDs(2)
	ring, err := NewRing(ids, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}

	tr := NewTCPTransport(nil)
	cfg := fastConfig()
	cfg.Nodes = ids
	cfg.FetchDeadline = 2 * time.Second // loopback, but CI machines stall

	nodes := make([]*Node, len(ids))
	for i, id := range ids {
		c := cfg
		c.Self = id
		n, err := NewNode(c, fx.cat, ring.Shard(fx.pool, id), tr)
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		nodes[i] = n
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, len(ids))
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		tr.SetAddr(id, ln.Addr().String())
		n := nodes[i]
		go func() { done <- n.ServeReplication(ctx, ln) }()
	}

	for _, n := range nodes {
		if err := n.WarmUp(ctx); err != nil {
			t.Fatalf("%s: WarmUp over TCP: %v", n.ID(), err)
		}
	}

	ref := fx.reference()
	for _, q := range fx.queries {
		want, _ := ref.Cardinality(ctx, q)
		for _, n := range nodes {
			got, prov := n.Estimate(ctx, q, robust.Config{})
			if got != want {
				t.Fatalf("%s: %s: TCP-warmed answer %v, single-node %v", n.ID(), q, got, want)
			}
			if prov.Tier != robust.TierFullDP {
				t.Fatalf("%s: warmed node answered from %s", n.ID(), prov.Tier)
			}
		}
	}

	cancel()
	for range ids {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("ServeReplication returned %v on cancellation", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ServeReplication did not exit after cancellation")
		}
	}
}

// TestServeReplicationAcceptErrorReturns: a listener failure while the
// context is still live must surface as an error from ServeReplication —
// the ctx watcher goroutine must not pin the deferred wg.Wait until
// process shutdown (the sitnode supervisor reads this channel to learn the
// replication plane died).
func TestServeReplicationAcceptErrorReturns(t *testing.T) {
	fx := newClusterFixture(t)
	h, err := NewHarness(fx.cat, fx.pool, 1, fastConfig())
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- h.Node(0).ServeReplication(context.Background(), ln) }()
	ln.Close() // the accept loop fails with the context still live
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("ServeReplication returned nil for an accept error under a live context")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeReplication hung after the listener failed (watcher goroutine leaked)")
	}
}

// TestReplicationListenerRejectsRequestPayload: request frames are defined
// to carry an empty payload, and the unauthenticated listener must refuse
// one that declares a payload instead of allocating for it — the client
// gets no shard frame back.
func TestReplicationListenerRejectsRequestPayload(t *testing.T) {
	fx := newClusterFixture(t)
	h, err := NewHarness(fx.cat, fx.pool, 1, fastConfig())
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- h.Node(0).ServeReplication(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	req := &Frame{Node: "node-0", Payload: []byte("request frames carry no payload")}
	if err := WriteFrame(conn, req); err != nil {
		t.Fatalf("writing request: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if frame, err := ReadFrame(conn); err == nil {
		t.Fatalf("listener served a shard (stamp %s) for a request with a payload", frame.Stamp)
	}

	// An honest empty-payload request on a fresh connection still works.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn2.Close()
	if err := WriteFrame(conn2, &Frame{Node: "node-0"}); err != nil {
		t.Fatalf("writing request: %v", err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadFrame(conn2); err != nil {
		t.Fatalf("empty-payload request refused: %v", err)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeReplication did not exit after cancellation")
	}
}
