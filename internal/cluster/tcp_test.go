package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"condsel/internal/robust"
)

// TestTCPReplication: two nodes over real loopback sockets — each serves
// its shard with ServeReplication, fetches the peer's via TCPTransport,
// and the warmed pair answers like a single node; context cancellation
// shuts both servers down cleanly.
func TestTCPReplication(t *testing.T) {
	fx := newClusterFixture(t)
	ids := HarnessIDs(2)
	ring, err := NewRing(ids, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}

	tr := NewTCPTransport(nil)
	cfg := fastConfig()
	cfg.Nodes = ids
	cfg.FetchDeadline = 2 * time.Second // loopback, but CI machines stall

	nodes := make([]*Node, len(ids))
	for i, id := range ids {
		c := cfg
		c.Self = id
		n, err := NewNode(c, fx.cat, ring.Shard(fx.pool, id), tr)
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		nodes[i] = n
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, len(ids))
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		tr.SetAddr(id, ln.Addr().String())
		n := nodes[i]
		go func() { done <- n.ServeReplication(ctx, ln) }()
	}

	for _, n := range nodes {
		if err := n.WarmUp(ctx); err != nil {
			t.Fatalf("%s: WarmUp over TCP: %v", n.ID(), err)
		}
	}

	ref := fx.reference()
	for _, q := range fx.queries {
		want, _ := ref.Cardinality(ctx, q)
		for _, n := range nodes {
			got, prov := n.Estimate(ctx, q, robust.Config{})
			if got != want {
				t.Fatalf("%s: %s: TCP-warmed answer %v, single-node %v", n.ID(), q, got, want)
			}
			if prov.Tier != robust.TierFullDP {
				t.Fatalf("%s: warmed node answered from %s", n.ID(), prov.Tier)
			}
		}
	}

	cancel()
	for range ids {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("ServeReplication returned %v on cancellation", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ServeReplication did not exit after cancellation")
		}
	}
}
