package cluster

import (
	"fmt"
	"sort"

	"condsel/internal/engine"
	"condsel/internal/selcache"
	"condsel/internal/sit"
)

// Consistent-hash ring. Shard ownership is a pure function of the
// membership list: every node contributes VNodes virtual points derived
// from seeded hashes of its ID, the points are sorted, and a key (a
// qualified attribute name, "table.column") belongs to the first point at
// or after its own hash. Every node computes the same ring from the same
// membership, with no coordination and no clock — the determinism
// discipline the rest of the module runs under.
//
// Statistics are sharded by the (table, attribute) the SIT predicts —
// SIT.Attr for 1-D statistics, the X attribute for 2-D ones — so all
// statistics over one attribute land on one owner and a query's candidate
// set for that attribute is either fully local or fully on one peer.

// DefaultVNodes is the virtual-node count per member when RingConfig leaves
// it zero: enough for a low-variance split at small N without making ring
// construction noticeable.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over a fixed membership.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []NodeID    // membership, sorted, deduplicated
}

type ringPoint struct {
	hash uint64
	node NodeID
}

// NewRing builds the ring for the membership with vnodes virtual points per
// node (<=0 selects DefaultVNodes). Membership order does not matter; the
// ring is identical for any permutation.
func NewRing(nodes []NodeID, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	members := append([]NodeID(nil), nodes...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for i := 1; i < len(members); i++ {
		if members[i] == members[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", members[i])
		}
	}
	r := &Ring{nodes: members, points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, n := range members {
		base := selcache.HashString(string(n))
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: selcache.HashCombine(base, uint64(i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by ID so every node still
		// computes the same ring.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the membership in sorted order. Callers must not mutate it.
func (r *Ring) Nodes() []NodeID { return r.nodes }

// Owner returns the node owning the key (a qualified attribute name).
func (r *Ring) Owner(key string) NodeID {
	h := selcache.HashUint64(selcache.HashString(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is a circle
	}
	return r.points[i].node
}

// OwnerOfAttr returns the node owning the attribute.
func (r *Ring) OwnerOfAttr(cat *engine.Catalog, attr engine.AttrID) NodeID {
	return r.Owner(cat.AttrName(attr))
}

// QueryOwners returns the deduplicated, sorted set of nodes owning shards a
// query's predicates draw statistics from — the peers a node must have
// replicated (or degrade around) to answer it.
func (r *Ring) QueryOwners(cat *engine.Catalog, q *engine.Query) []NodeID {
	seen := make(map[NodeID]bool)
	for _, p := range q.Preds {
		for _, attr := range predAttrs(p) {
			seen[r.OwnerOfAttr(cat, attr)] = true
		}
	}
	owners := make([]NodeID, 0, len(seen))
	for id := range seen {
		owners = append(owners, id)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	return owners
}

// Shard extracts the sub-pool of full owned by node under this ring: every
// 1-D SIT whose predicted attribute hashes to the node, and every 2-D SIT
// whose X attribute does. Shards of distinct nodes are disjoint and their
// union over the membership is the full pool.
func (r *Ring) Shard(full *sit.Pool, node NodeID) *sit.Pool {
	cat := full.Cat
	shard := full.Filter(func(s *sit.SIT) bool {
		return r.OwnerOfAttr(cat, s.Attr) == node
	})
	for _, s := range full.SITs2D() {
		if r.OwnerOfAttr(cat, s.X) == node {
			shard.Add2D(s)
		}
	}
	return shard
}
