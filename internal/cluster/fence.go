package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Epoch fencing. Every node stamps its shard with a (Epoch, Gen) pair:
// the epoch counts full local rebuilds (a restart, a from-scratch pool
// reconstruction) and the generation is the sit.Pool content stamp within
// that epoch. A frame from a peer is admitted only when its stamp is
// strictly newer than the last admitted one, so a replayed or duplicated
// frame — however it arrives: retried fetch, partitioned-then-healed link
// delivering queued traffic, a proxy re-sending — can never roll a replica
// backwards or bump a merged-pool generation.
//
// The ordering is lexicographic: epochs dominate generations, because
// generations are only comparable within one epoch (a rebuilt pool restarts
// content stamps from whatever the process counter says). All comparisons
// go through Stamp.Newer — raw <  on Epoch values fences nothing and is
// rejected by the sitlint clusterfence analyzer.

// NodeID names one cluster member. IDs are compared as opaque strings and
// hashed onto the ring; they must be unique and stable across restarts.
type NodeID string

// Epoch counts full local rebuilds of a node's shard. It must be strictly
// increasing across restarts too — generations reset with the process, so
// a reused epoch strands the node behind the fence; EpochFile persists it
// as a durable restart counter. Compare epochs only
// through Stamp.Newer (enforced by sitlint's clusterfence analyzer): a raw
// comparison ignores the generation half and silently accepts replays.
type Epoch uint64

// Stamp is the fencing token a node attaches to every frame it ships: its
// current epoch and the shard pool's content generation within it.
type Stamp struct {
	Epoch Epoch  `json:"epoch"`
	Gen   uint64 `json:"gen"`
}

// Newer reports whether s is strictly newer than o in fencing order:
// a higher epoch always wins, and within one epoch a higher generation
// wins. Equal stamps are not newer — re-delivering the admitted frame is a
// no-op, not progress. This method is the single sanctioned epoch
// comparison in the module.
func (s Stamp) Newer(o Stamp) bool {
	if s.Epoch != o.Epoch {
		return s.Epoch > o.Epoch
	}
	return s.Gen > o.Gen
}

// IsZero reports whether the stamp is the zero value (nothing admitted yet).
func (s Stamp) IsZero() bool { return s == Stamp{} }

// String renders the stamp as e<epoch>/g<gen> for provenance and logs.
func (s Stamp) String() string { return fmt.Sprintf("e%d/g%d", uint64(s.Epoch), s.Gen) }

// GenVector is the cluster-wide generation vector: the newest admitted
// stamp per peer. It is the fence — Admit refuses anything not strictly
// newer — and the invalidation signal: when Admit moves a peer's stamp
// forward, every selectivity cached against a merged pool containing the
// peer's previous shard must be evicted (the caller owns that; see
// Node.installReplica).
type GenVector struct {
	mu       sync.Mutex
	admitted map[NodeID]Stamp
	rejected int64 // stale frames refused by the fence
}

// NewGenVector returns an empty vector.
func NewGenVector() *GenVector {
	return &GenVector{admitted: make(map[NodeID]Stamp)}
}

// Admit installs the stamp for the node when it is strictly newer than the
// currently admitted one and reports whether it did. A refused stamp bumps
// the rejection counter and changes nothing else — a stale-epoch replay
// must not move any generation.
func (v *GenVector) Admit(n NodeID, s Stamp) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if cur, ok := v.admitted[n]; ok && !s.Newer(cur) {
		v.rejected++
		return false
	}
	v.admitted[n] = s
	return true
}

// Get returns the admitted stamp for the node (zero when none).
func (v *GenVector) Get(n NodeID) Stamp {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.admitted[n]
}

// Rejected returns how many frames the fence has refused.
func (v *GenVector) Rejected() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.rejected
}

// Snapshot returns the vector as a deterministic (NodeID-sorted) slice of
// entries, for logs and the cluster gauges.
func (v *GenVector) Snapshot() []VectorEntry {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]VectorEntry, 0, len(v.admitted))
	for n, s := range v.admitted {
		out = append(out, VectorEntry{Node: n, Stamp: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// VectorEntry is one (node, stamp) pair of a GenVector snapshot.
type VectorEntry struct {
	Node  NodeID
	Stamp Stamp
}
