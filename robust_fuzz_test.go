package condsel_test

// Fuzz target for the fault-tolerant estimation surface: whatever pool
// snapshot the fuzzer invents — truncated JSON, inverted buckets, counts
// exceeding row totals — LoadPool either rejects it cleanly or the robust
// estimator answers with a finite, in-range estimate. Corrupt statistics
// that survive the load-time header check must be quarantined at first use,
// never served. Seed corpus lives in testdata/fuzz/FuzzRobustEstimate.

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"

	condsel "condsel"
)

var (
	robustFuzzOnce    sync.Once
	robustFuzzDB      *condsel.DB
	robustFuzzQueries []*condsel.Query
)

// robustFuzzWorld lazily builds one snowflake database and workload shared
// by all fuzz iterations. Only the pool varies per iteration (decoded from
// fuzzer bytes); the database and queries are read-only.
func robustFuzzWorld() (*condsel.DB, []*condsel.Query) {
	robustFuzzOnce.Do(func() {
		db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: 11, FactRows: 300})
		queries, err := db.GenerateWorkload(condsel.WorkloadOptions{Seed: 11, NumQueries: 4, Joins: 2, Filters: 2})
		if err != nil {
			panic(err)
		}
		robustFuzzDB = db
		robustFuzzQueries = queries
	})
	return robustFuzzDB, robustFuzzQueries
}

func FuzzRobustEstimate(f *testing.F) {
	seeds := []string{
		// Well-formed single-statistic pool.
		`{"version":1,"sits":[{"attr":"product.id","diff":0,"hist":{"rows":40,"totalRows":40,"buckets":[{"Lo":0,"Hi":39,"Count":40,"Distinct":40}]}}]}`,
		// Inverted bucket range: passes the O(1) load check, quarantined on use.
		`{"version":1,"sits":[{"attr":"product.id","diff":0,"hist":{"rows":40,"buckets":[{"Lo":39,"Hi":0,"Count":40,"Distinct":40}]}}]}`,
		// Bucket counts exceeding the row total.
		`{"version":1,"sits":[{"attr":"product.id","diff":0,"hist":{"rows":4,"buckets":[{"Lo":0,"Hi":39,"Count":4000,"Distinct":40}]}}]}`,
		// Overlapping buckets.
		`{"version":1,"sits":[{"attr":"brand.id","diff":0.5,"hist":{"rows":40,"buckets":[{"Lo":0,"Hi":20,"Count":20,"Distinct":20},{"Lo":10,"Hi":39,"Count":20,"Distinct":20}]}}]}`,
		// Join-expression SIT with a bogus negative diff.
		`{"version":1,"sits":[{"attr":"brand.id","diff":-3,"expr":[{"join":true,"left":"product.category_fk","right":"category.id"}],"hist":{"rows":300,"buckets":[{"Lo":0,"Hi":9,"Count":300,"Distinct":10}]}}]}`,
		// Unknown attribute, wrong version, truncated JSON, not JSON at all.
		`{"version":1,"sits":[{"attr":"no.such","diff":0,"hist":{"rows":1,"buckets":[]}}]}`,
		`{"version":99,"sits":[]}`,
		`{"version":1,"sits":[{"attr":"product.id"`,
		`SIT(product.id | ...)`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), byte(0))
	}

	f.Fuzz(func(t *testing.T, snapshot []byte, qpick byte) {
		db, queries := robustFuzzWorld()
		pool, err := db.LoadPool(bytes.NewReader(snapshot))
		if err != nil {
			return // clean rejection is a valid outcome
		}
		est := db.NewEstimator(pool, condsel.Diff)
		q := queries[int(qpick)%len(queries)]

		sel, sprov := est.SelectivityRobust(nil, q)
		if math.IsNaN(sel) || sel < 0 || sel > 1 {
			t.Fatalf("selectivity %v out of [0,1] (tier %v, reason %q)", sel, sprov.Tier, sprov.FallbackReason)
		}
		card, cprov := est.CardinalityRobust(context.Background(), q)
		if math.IsNaN(card) || math.IsInf(card, 0) || card < 0 {
			t.Fatalf("cardinality %v invalid (tier %v, reason %q)", card, cprov.Tier, cprov.FallbackReason)
		}

		// Whatever was quarantined must be accounted for. Statistics rejected
		// at Add time are quarantined without ever registering, so healthy +
		// quarantined bounds the registered count from above.
		h := pool.Health()
		if h.SITs > pool.Size() || h.SITs+h.Quarantined < pool.Size() {
			t.Fatalf("health accounting: %d healthy + %d quarantined vs %d registered",
				h.SITs, h.Quarantined, pool.Size())
		}
		for id, reason := range h.Reasons {
			if reason == "" {
				t.Fatalf("quarantined %s with empty reason", id)
			}
		}
	})
}
