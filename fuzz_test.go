package condsel_test

// Native fuzz targets for the public query-construction surface: whatever
// byte stream the fuzzer invents, QueryBuilder must either return a clean
// error from Build or produce a query that renders, re-parses to itself and
// estimates to a sane selectivity — never panic.

import (
	"math"
	"sync"
	"testing"

	condsel "condsel"
)

var (
	fuzzOnce sync.Once
	fuzzDB   *condsel.DB
	fuzzEst  *condsel.Estimator
)

// fuzzWorld lazily builds one tiny snowflake database, a J1 statistics pool
// over a fixed workload and a shared estimator. Fuzz iterations only read
// them (the estimator is concurrency-safe), so a single instance serves the
// fuzzing engine's parallel workers.
func fuzzWorld() (*condsel.DB, *condsel.Estimator) {
	fuzzOnce.Do(func() {
		db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: 11, FactRows: 300})
		queries, err := db.GenerateWorkload(condsel.WorkloadOptions{Seed: 11, NumQueries: 4, Joins: 2, Filters: 2})
		if err != nil {
			panic(err)
		}
		pool := db.BuildStatistics(queries, 1, nil)
		fuzzDB = db
		fuzzEst = db.NewEstimator(pool, condsel.Diff).UseCache(condsel.NewSelCache(4096))
	})
	return fuzzDB, fuzzEst
}

// FuzzQueryBuilder drives Query().Join().Filter().Build() with a
// fuzzer-chosen op stream mixing valid attribute names (picked from the
// catalog by byte index) and a raw fuzzer string.
func FuzzQueryBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, "fact.a0", int64(0), int64(10))
	f.Add([]byte{2, 0, 0, 2, 1, 1}, "", int64(-5), int64(5))
	f.Add([]byte{1, 9, 4, 200, 33}, "no.such", int64(math.MinInt64), int64(math.MaxInt64))
	f.Add([]byte{}, "fact", int64(7), int64(3))

	f.Fuzz(func(t *testing.T, ops []byte, raw string, lo, hi int64) {
		db, est := fuzzWorld()
		attrs := db.Attributes()
		pos := 0
		nextAttr := func() string {
			if pos >= len(ops) {
				return raw
			}
			a := attrs[int(ops[pos])%len(attrs)]
			pos++
			return a
		}
		b := db.Query()
		for pos < len(ops) {
			op := ops[pos]
			pos++
			switch op % 6 {
			case 0:
				b = b.Join(nextAttr(), nextAttr())
			case 1:
				b = b.Join(raw, nextAttr())
			case 2:
				b = b.Filter(nextAttr(), lo, hi)
			case 3:
				b = b.FilterEq(nextAttr(), lo)
			case 4:
				b = b.Filter(raw, lo, hi)
			case 5:
				b = b.FilterAtLeast(nextAttr(), lo)
			}
		}
		q, err := b.Build()
		if err != nil {
			if q != nil {
				t.Fatalf("Build returned both a query and error %v", err)
			}
			return // clean rejection is a valid outcome
		}
		s := q.String()
		if s == "" {
			t.Fatalf("built query renders empty")
		}
		if got := q.NumJoins() + q.NumFilters(); got != q.NumPredicates() {
			t.Fatalf("predicate accounting: %d joins + %d filters != %d total",
				q.NumJoins(), q.NumFilters(), q.NumPredicates())
		}
		// The documented contract: parsing a query's own rendering
		// reproduces the query.
		q2, err := db.ParseQuery(s)
		if err != nil {
			t.Fatalf("own rendering failed to parse: %v\nquery: %s", err, s)
		}
		if s2 := q2.String(); s2 != s {
			t.Fatalf("parse round-trip changed rendering:\n was: %s\n now: %s", s, s2)
		}
		// Estimation never panics and stays in range (cap the DP size so a
		// long op stream cannot stall the fuzzing engine).
		if q.NumPredicates() <= 8 {
			sel := est.Selectivity(q)
			if math.IsNaN(sel) || sel < 0 || sel > 1+1e-9 {
				t.Fatalf("selectivity %v out of [0,1] for %s", sel, s)
			}
		}
	})
}
