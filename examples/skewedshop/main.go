// Skewedshop reproduces the paper's §1 motivating example on a hand-built
// database: lineitem ⋈ orders ⋈ customer where expensive orders have many
// line items (Zipfian skew) and most customers share a nation.
//
// It walks through the paper's Figure 1/Figure 2 story:
//
//  1. the classic independence estimate underestimates badly;
//  2. either single SIT — SIT(price | L⋈O) or SIT(nation | O⋈C) — helps,
//     but view matching can apply only one of them at a time (their
//     expressions overlap on orders without nesting);
//  3. the conditional-selectivity framework combines both SITs in one
//     decomposition and gets close to the truth.
package main

import (
	"fmt"
	"log"
	"math/rand"

	condsel "condsel"
)

func main() {
	db := buildShop(1, 2000, 15000)

	q, err := db.Query().
		Join("lineitem.oid", "orders.id").
		Join("orders.cid", "customer.id").
		FilterAtLeast("orders.price", 900). // expensive orders…
		FilterEq("customer.nation", 1).     // …of domestic customers
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)
	truth := db.ExactCardinality(q)
	fmt.Printf("\n%-34s %10.0f\n", "true cardinality", truth)

	// Base histograms only: the optimizer's classic estimate.
	base := db.NewPool(nil)
	for _, attr := range []string{"lineitem.oid", "orders.id", "orders.cid",
		"orders.price", "customer.id", "customer.nation"} {
		if err := base.AddBaseHistogram(attr); err != nil {
			log.Fatal(err)
		}
	}
	report(db, base, q, "independence (no SITs)")

	// One SIT at a time — what view matching achieves (Figure 1 b/c).
	lo := [2]string{"lineitem.oid", "orders.id"}
	oc := [2]string{"orders.cid", "customer.id"}

	priceOnly := db.NewPool(nil)
	copyBase(base, priceOnly)
	must(priceOnly.AddSIT("orders.price", lo))
	report(db, priceOnly, q, "SIT(price | L⋈O) alone")

	nationOnly := db.NewPool(nil)
	copyBase(base, nationOnly)
	must(nationOnly.AddSIT("customer.nation", oc))
	report(db, nationOnly, q, "SIT(nation | O⋈C) alone")

	// Both SITs available. GVM must still pick one (the expressions
	// conflict); getSelectivity combines them (Figure 2).
	both := db.NewPool(nil)
	copyBase(base, both)
	must(both.AddSIT("orders.price", lo))
	must(both.AddSIT("customer.nation", oc))

	gvmEst := db.NewGVMEstimator(both).Cardinality(q)
	fmt.Printf("%-34s %10.0f   (view matching: one SIT only)\n", "GVM with both SITs", gvmEst)
	report(db, both, q, "getSelectivity with both SITs")

	fmt.Println("\ndecomposition chosen by getSelectivity:")
	fmt.Print(db.NewEstimator(both, condsel.Diff).Explain(q))
}

func report(db *condsel.DB, pool *condsel.Pool, q *condsel.Query, label string) {
	est := db.NewEstimator(pool, condsel.Diff).Cardinality(q)
	fmt.Printf("%-34s %10.0f\n", label, est)
}

func copyBase(from, to *condsel.Pool) {
	for _, attr := range []string{"lineitem.oid", "orders.id", "orders.cid",
		"orders.price", "customer.id", "customer.nation"} {
		must(to.AddBaseHistogram(attr))
	}
	_ = from
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// buildShop creates the three-table shop with two independent skews, one
// per SIT: (i) expensive orders (price ≥ 900) have twenty line items
// instead of one, so price correlates with the L⋈O fan-out; (ii) orders are
// placed Zipf-style by "popular" low-id customers, who are mostly domestic
// (nation 1), so nation correlates with the O⋈C fan-out. Only a third of
// all customers are domestic, but they place most of the orders.
func buildShop(seed int64, nCustomers, nOrders int) *condsel.DB {
	rng := rand.New(rand.NewSource(seed))
	db := condsel.NewDB()

	cid := make([]int64, nCustomers)
	nation := make([]int64, nCustomers)
	for i := range cid {
		cid[i] = int64(i)
		if i < nCustomers/3 { // the popular (frequently ordering) customers
			nation[i] = 1
		} else {
			nation[i] = int64(2 + rng.Intn(30))
		}
	}
	must(db.AddTable("customer",
		condsel.Column{Name: "id", Values: cid},
		condsel.Column{Name: "nation", Values: nation}))

	zipf := rand.NewZipf(rng, 1.3, 1, uint64(nCustomers-1))
	oid := make([]int64, nOrders)
	ocid := make([]int64, nOrders)
	price := make([]int64, nOrders)
	var liOID, liQty []int64
	for i := range oid {
		oid[i] = int64(i)
		ocid[i] = int64(zipf.Uint64())
		price[i] = int64(rng.Intn(1000))
		items := 1
		if price[i] >= 900 {
			items = 20
		}
		for k := 0; k < items; k++ {
			liOID = append(liOID, oid[i])
			liQty = append(liQty, int64(1+rng.Intn(50)))
		}
	}
	must(db.AddTable("orders",
		condsel.Column{Name: "id", Values: oid},
		condsel.Column{Name: "cid", Values: ocid},
		condsel.Column{Name: "price", Values: price}))
	must(db.AddTable("lineitem",
		condsel.Column{Name: "oid", Values: liOID},
		condsel.Column{Name: "qty", Values: liQty}))
	return db
}
