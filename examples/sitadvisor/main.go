// Sitadvisor demonstrates using the estimator as a *statistics advisor*:
// given a workload, it scores every candidate SIT by how much adding it
// reduces the workload's estimation error, and greedily recommends a small
// set to materialize. This is the natural follow-on application the paper's
// framework enables (which SITs are worth their storage?).
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	condsel "condsel"
)

const (
	factRows   = 15000
	numQueries = 8
	budget     = 5 // SITs to recommend
)

// candidate is one SIT the advisor may materialize.
type candidate struct {
	attr string
	join [2]string
}

func (c candidate) desc() string {
	return fmt.Sprintf("SIT(%s | %s = %s)", c.attr, c.join[0], c.join[1])
}

func main() {
	db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: 11, FactRows: factRows})
	// Wide filters keep the query results (and therefore the absolute
	// estimation errors) large enough that SIT choices matter visibly.
	wl, err := db.GenerateWorkload(condsel.WorkloadOptions{
		Seed: 11, NumQueries: numQueries, Joins: 2, Filters: 2,
		TargetSelectivity: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d random 2-join queries over the snowflake schema\n", len(wl))

	truth := make([]float64, len(wl))
	for i, q := range wl {
		truth[i] = db.ExactCardinality(q)
	}
	workloadErr := func(pool *condsel.Pool) float64 {
		est := db.NewEstimator(pool, condsel.Diff)
		var sum float64
		for i, q := range wl {
			sum += math.Abs(est.Cardinality(q) - truth[i])
		}
		return sum / float64(len(wl))
	}

	// buildPool assembles base histograms plus the given SITs. SIT builds
	// are cheap to repeat: the database's evaluator memoizes join results.
	buildPool := func(chosen []candidate) *condsel.Pool {
		p := db.NewPool(nil)
		for _, a := range db.Attributes() {
			if err := p.AddBaseHistogram(a); err != nil {
				log.Fatal(err)
			}
		}
		for _, c := range chosen {
			if err := p.AddSIT(c.attr, c.join); err != nil {
				log.Fatal(err)
			}
		}
		return p
	}

	baseErr := workloadErr(buildPool(nil))
	fmt.Printf("%-44s %14.0f\n\n", "workload avg abs error, base histograms only", baseErr)

	cands := candidates(db)
	fmt.Printf("candidate single-join SITs: %d; greedy budget: %d\n\n", len(cands), budget)

	var chosen []candidate
	curErr := baseErr
	for round := 0; round < budget; round++ {
		bestIdx, bestErr := -1, curErr
		for i, c := range cands {
			if containsCand(chosen, c) {
				continue
			}
			e := workloadErr(buildPool(append(append([]candidate{}, chosen...), c)))
			if e < bestErr {
				bestIdx, bestErr = i, e
			}
		}
		if bestIdx < 0 {
			break
		}
		fmt.Printf("  %d. %-58s error %8.0f → %8.0f\n",
			round+1, cands[bestIdx].desc(), curErr, bestErr)
		chosen = append(chosen, cands[bestIdx])
		curErr = bestErr
	}

	fmt.Printf("\n%-44s %14.0f\n", "workload avg abs error with recommendations", curErr)
	if baseErr > 0 {
		fmt.Printf("%-44s %13.1f%%\n", "error reduction", 100*(1-curErr/baseErr))
	}
}

// candidates enumerates SIT(attr | edge) for every filterable attribute and
// every schema edge touching the attribute's table.
func candidates(db *condsel.DB) []candidate {
	edges, err := db.SnowflakeJoins()
	if err != nil {
		log.Fatal(err)
	}
	tableOf := func(attr string) string { return attr[:strings.IndexByte(attr, '.')] }
	var attrs []string
	for _, a := range db.Attributes() {
		for _, suffix := range []string{".hot", ".u1", ".z1", ".c1", ".u2"} {
			if strings.HasSuffix(a, suffix) {
				attrs = append(attrs, a)
			}
		}
	}
	sort.Strings(attrs)
	var out []candidate
	for _, a := range attrs {
		t := tableOf(a)
		for _, e := range edges {
			if tableOf(e[0]) == t || tableOf(e[1]) == t {
				out = append(out, candidate{attr: a, join: e})
			}
		}
	}
	return out
}

func containsCand(list []candidate, c candidate) bool {
	for _, x := range list {
		if x == c {
			return true
		}
	}
	return false
}
