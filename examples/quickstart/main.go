// Quickstart: generate a skewed snowflake database, build statistics on
// query expressions (SITs) for a query, and compare cardinality estimates
// with and without them against the exact answer.
package main

import (
	"fmt"
	"log"

	condsel "condsel"
)

func main() {
	// A synthetic star/snowflake database in the style of the paper's
	// evaluation: Zipf-skewed foreign keys, dimension attributes correlated
	// with join fan-out, 10% dangling keys.
	db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: 7, FactRows: 30000})
	fmt.Print(db.Summary())

	// "Sales of the most popular customers": the filter on customer.hot is
	// strongly correlated with the join fan-out, so the classic
	// independence assumption underestimates badly.
	q, err := db.Query().
		Join("sales.customer_fk", "customer.id").
		Filter("customer.hot", 9000, 10000).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery:", q)

	// J2 pool: base histograms plus SITs over join expressions with at
	// most two join predicates.
	pool := db.BuildStatistics([]*condsel.Query{q}, 2, nil)
	noSit := pool.MaxJoins(0)
	fmt.Printf("statistics built: %d (of which %d base histograms)\n\n",
		pool.Size(), noSit.Size())

	truth := db.ExactCardinality(q)
	base := db.NewEstimator(noSit, condsel.NInd).Cardinality(q)
	withSits := db.NewEstimator(pool, condsel.Diff).Cardinality(q)

	fmt.Printf("%-24s %12.0f\n", "true cardinality", truth)
	fmt.Printf("%-24s %12.0f   (%.1fx off)\n", "independence estimate", base, ratio(base, truth))
	fmt.Printf("%-24s %12.0f   (%.1fx off)\n", "with SITs (Diff model)", withSits, ratio(withSits, truth))

	fmt.Println("\nhow the estimate was assembled:")
	fmt.Print(db.NewEstimator(pool, condsel.Diff).Explain(q))
}

func ratio(est, truth float64) float64 {
	if est == 0 || truth == 0 {
		return 0
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}
