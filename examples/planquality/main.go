// Planquality demonstrates the downstream payoff of better cardinality
// estimates — the study the paper leaves as future work: a System-R style
// join-order optimizer picks plans under different estimators, and the
// chosen plans are re-costed with exact cardinalities.
//
// With independence-only estimates the optimizer regularly picks join
// orders several times more expensive than optimal; with SITs the chosen
// orders are (near-)optimal.
package main

import (
	"fmt"
	"log"

	condsel "condsel"
)

func main() {
	db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: 19, FactRows: 20000})
	wl, err := db.GenerateWorkload(condsel.WorkloadOptions{
		Seed: 19, NumQueries: 6, Joins: 5, Filters: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool := db.BuildStatistics(wl, 2, &condsel.StatsOptions{Workers: 4})
	noSit := pool.MaxJoins(0)

	fmt.Println("join orders chosen under each estimator (5-way join queries):")
	for i, q := range wl {
		basePlan, _, err := db.NewEstimator(noSit, condsel.NInd).BestPlan(q)
		if err != nil {
			log.Fatal(err)
		}
		sitPlan, _, err := db.NewEstimator(pool, condsel.Diff).BestPlan(q)
		if err != nil {
			log.Fatal(err)
		}
		marker := " "
		if basePlan != sitPlan {
			marker = "≠" // the estimates changed the chosen join order
		}
		fmt.Printf("\nquery %d %s\n  independence: %s\n  with SITs:    %s\n",
			i, marker, basePlan, sitPlan)
	}

	fmt.Println("\nRun `go run ./cmd/sitbench -fig p1` for the quantitative study:")
	fmt.Println("true cost of chosen plans vs the true optimum, per technique.")
}
