// Memointegration demonstrates the paper's §4.2 optimizer coupling: instead
// of running the full getSelectivity dynamic program, selectivity
// estimation is driven by the decompositions a Cascades-style memo's
// entries induce while transformation rules explore alternative plans.
//
// The example compares, for several workload queries:
//
//   - the exact cardinality,
//   - the classic independence estimate,
//   - the full getSelectivity estimate (Diff model), and
//   - the memo-coupled estimate (same statistics, search pruned to
//     optimizer-explored plans).
package main

import (
	"fmt"
	"log"
	"math"

	condsel "condsel"
)

func main() {
	db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: 3, FactRows: 20000})
	wl, err := db.GenerateWorkload(condsel.WorkloadOptions{
		Seed: 3, NumQueries: 5, Joins: 3, Filters: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool := db.BuildStatistics(wl, 2, nil)
	noSit := pool.MaxJoins(0)

	fmt.Printf("%4s %14s %14s %14s %14s\n",
		"qry", "true", "independence", "getSelectivity", "memo-coupled")
	var fullErr, coupledErr float64
	for i, q := range wl {
		truth := db.ExactCardinality(q)
		base := db.NewEstimator(noSit, condsel.NInd).Cardinality(q)
		est := db.NewEstimator(pool, condsel.Diff)
		full := est.Cardinality(q)
		coupled, err := est.CoupledCardinality(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %14.0f %14.0f %14.0f %14.0f\n", i, truth, base, full, coupled)
		fullErr += math.Abs(full - truth)
		coupledErr += math.Abs(coupled - truth)
	}
	n := float64(len(wl))
	fmt.Printf("\navg abs error: getSelectivity %.0f, memo-coupled %.0f\n",
		fullErr/n, coupledErr/n)
	fmt.Println("\nThe coupled estimator explores only optimizer-induced decompositions;")
	fmt.Println("its accuracy approaches the full dynamic program as exploration widens,")
	fmt.Println("at a fraction of the integration cost in an existing optimizer (§4.2).")
}
