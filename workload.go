package condsel

import (
	"fmt"

	"condsel/internal/workload"
)

// WorkloadOptions configures random SPJ workload generation over a
// generated snowflake database, mirroring the paper's §5 workloads.
type WorkloadOptions struct {
	Seed int64
	// NumQueries is the workload size (default 100).
	NumQueries int
	// Joins is the number of join predicates per query (default 3).
	Joins int
	// Filters is the number of filter predicates per query (default 3).
	Filters int
	// TargetSelectivity is the intended per-filter selectivity
	// (default 0.05).
	TargetSelectivity float64
}

// GenerateWorkload produces random SPJ queries with connected join graphs,
// selectivity-targeted filters and guaranteed non-empty results. It is only
// available on databases built with GenerateSnowflake (the generator needs
// the schema's foreign-key graph).
func (db *DB) GenerateWorkload(opts WorkloadOptions) ([]*Query, error) {
	if db.gen == nil {
		return nil, fmt.Errorf("condsel: GenerateWorkload requires a GenerateSnowflake database")
	}
	g := workload.NewGenerator(db.gen, workload.Config{
		Seed:              opts.Seed,
		NumQueries:        opts.NumQueries,
		Joins:             opts.Joins,
		Filters:           opts.Filters,
		TargetSelectivity: opts.TargetSelectivity,
	})
	qs, err := g.Generate()
	if err != nil {
		return nil, err
	}
	out := make([]*Query, len(qs))
	for i, q := range qs {
		out[i] = &Query{db: db, q: q}
	}
	return out, nil
}

// SnowflakeJoins returns the foreign-key join edges of a generated
// snowflake database as [child, parent] attribute-name pairs, for building
// queries and SIT expressions by hand.
func (db *DB) SnowflakeJoins() ([][2]string, error) {
	if db.gen == nil {
		return nil, fmt.Errorf("condsel: SnowflakeJoins requires a GenerateSnowflake database")
	}
	out := make([][2]string, len(db.gen.Edges))
	for i, e := range db.gen.Edges {
		out[i] = [2]string{db.cat.AttrName(e.Child), db.cat.AttrName(e.Parent)}
	}
	return out, nil
}
