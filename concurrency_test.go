package condsel_test

// Concurrency and cross-query-cache proofs for the estimation service
// layer. Run with `go test -race` — the stress tests are the repo's
// data-race proof for a shared Estimator; the property tests prove the
// selectivity cache never changes an estimate (cache-on and cache-off are
// bit-identical under every error model).
//
// Every test derives its randomness from a constant seed and logs that seed
// on failure so runs reproduce exactly.

import (
	"math/rand"
	"sync"
	"testing"

	condsel "condsel"
)

// stressSeed seeds all shuffles in this file; logged on failure.
const stressSeed int64 = 20260805

// logSeedOnFailure makes any failing test print its seed for reproduction.
func logSeedOnFailure(t *testing.T, seed int64) {
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("reproduce with seed=%d", seed)
		}
	})
}

// stressWorld builds a small snowflake database, a workload, a J2 pool and
// per-query exact baselines shared by the tests below.
type stressWorld struct {
	db      *condsel.DB
	queries []*condsel.Query
	pool    *condsel.Pool
}

func buildStressWorld(t *testing.T, factRows, numQueries int) *stressWorld {
	t.Helper()
	db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: stressSeed, FactRows: factRows})
	queries, err := db.GenerateWorkload(condsel.WorkloadOptions{
		Seed:       stressSeed,
		NumQueries: numQueries,
		Joins:      3,
		Filters:    3,
	})
	if err != nil {
		t.Fatalf("seed %d: workload: %v", stressSeed, err)
	}
	return &stressWorld{db: db, queries: queries, pool: db.BuildStatistics(queries, 2, nil)}
}

// TestEstimatorConcurrentStress hammers one shared Estimator from 16
// goroutines over independently shuffled copies of the workload and checks
// every concurrent result bit-matches the sequential baseline. It runs with
// the cross-query cache both detached and attached; under -race it is the
// thread-safety proof for the whole estimation stack (core DP, pool
// candidate matching, histograms, selcache).
func TestEstimatorConcurrentStress(t *testing.T) {
	t.Parallel()
	logSeedOnFailure(t, stressSeed)
	w := buildStressWorld(t, 3000, 16)

	for _, tc := range []struct {
		name  string
		model condsel.Model
		cache *condsel.SelCache
	}{
		{"nInd-nocache", condsel.NInd, nil},
		{"Diff-nocache", condsel.Diff, nil},
		{"Diff-cache", condsel.Diff, condsel.NewSelCache(4096)},
		{"Diff-tiny-cache", condsel.Diff, condsel.NewSelCache(32)}, // eviction under contention
	} {
		t.Run(tc.name, func(t *testing.T) {
			logSeedOnFailure(t, stressSeed)
			est := w.db.NewEstimator(w.pool, tc.model)
			if tc.cache != nil {
				est.UseCache(tc.cache)
			}
			// Sequential baseline from an independent, cache-less estimator.
			baseline := make([]float64, len(w.queries))
			for i, q := range w.queries {
				baseline[i] = w.db.NewEstimator(w.pool, tc.model).Cardinality(q)
			}

			const goroutines = 16
			const rounds = 3
			var wg sync.WaitGroup
			errCh := make(chan string, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(stressSeed + int64(g)))
					order := rng.Perm(len(w.queries))
					for r := 0; r < rounds; r++ {
						rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
						for _, qi := range order {
							q := w.queries[qi]
							if got := est.Cardinality(q); got != baseline[qi] {
								errCh <- q.String()
								return
							}
							// Sub-query sessions exercise the memo path too.
							run := est.Run(q)
							if _, err := run.Selectivity(0, 1); err != nil {
								errCh <- err.Error()
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for msg := range errCh {
				t.Errorf("seed %d: concurrent estimate diverged from sequential baseline: %s", stressSeed, msg)
			}
			if tc.cache != nil {
				st := tc.cache.Stats()
				if st.Hits == 0 {
					t.Errorf("seed %d: shared cache saw no hits under 16 goroutines: %+v", stressSeed, st)
				}
				if st.Entries > st.Capacity {
					t.Errorf("seed %d: cache overflow: %+v", stressSeed, st)
				}
			}
		})
	}
}

// TestOptModelConcurrentStress drives the oracle-backed Opt model — the one
// path whose shared state (the exact evaluator's memo) is mutex-guarded —
// from 16 goroutines on a deliberately tiny database.
func TestOptModelConcurrentStress(t *testing.T) {
	t.Parallel()
	logSeedOnFailure(t, stressSeed)
	w := buildStressWorld(t, 600, 6)
	est := w.db.NewEstimator(w.pool, condsel.Opt).UseCache(condsel.NewSelCache(1024))

	baseline := make([]float64, len(w.queries))
	for i, q := range w.queries {
		baseline[i] = w.db.NewEstimator(w.pool, condsel.Opt).Cardinality(q)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(stressSeed + 100 + int64(g)))
			for _, qi := range rng.Perm(len(w.queries)) {
				if got := est.Cardinality(w.queries[qi]); got != baseline[qi] {
					t.Errorf("seed %d: Opt concurrent estimate %v != baseline %v for %s",
						stressSeed, got, baseline[qi], w.queries[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheEquivalenceAllModels is the cache-correctness property: for the
// generated snowflake workload, estimates with the cross-query cache
// enabled are bit-identical to estimates with it disabled, under NInd, Diff
// and Opt — on a cold cache, on a warm cache, and across estimators sharing
// one cache.
func TestCacheEquivalenceAllModels(t *testing.T) {
	t.Parallel()
	logSeedOnFailure(t, stressSeed)
	w := buildStressWorld(t, 2000, 12)

	for _, model := range []condsel.Model{condsel.NInd, condsel.Diff, condsel.Opt} {
		t.Run(model.String(), func(t *testing.T) {
			logSeedOnFailure(t, stressSeed)
			plain := w.db.NewEstimator(w.pool, model)
			cache := condsel.NewSelCache(8192)
			cached := w.db.NewEstimator(w.pool, model).UseCache(cache)

			for pass := 0; pass < 2; pass++ { // pass 1 runs against a warm cache
				for qi, q := range w.queries {
					want := plain.Cardinality(q)
					if got := cached.Cardinality(q); got != want {
						t.Fatalf("seed %d pass %d query %d: cached %v != plain %v\n%s",
							stressSeed, pass, qi, got, want, q)
					}
					wantSel := plain.Selectivity(q)
					if gotSel := cached.Selectivity(q); gotSel != wantSel {
						t.Fatalf("seed %d pass %d query %d: cached sel %v != plain %v",
							stressSeed, pass, qi, gotSel, wantSel)
					}
				}
			}
			st := cache.Stats()
			if st.Hits == 0 {
				t.Fatalf("seed %d: warm pass produced no cache hits: %+v", stressSeed, st)
			}

			// A second estimator sharing the cache must also agree.
			shared := w.db.NewEstimator(w.pool, model).UseCache(cache)
			for qi, q := range w.queries {
				if got, want := shared.Cardinality(q), plain.Cardinality(q); got != want {
					t.Fatalf("seed %d query %d: shared-cache estimator %v != plain %v",
						stressSeed, qi, got, want)
				}
			}
		})
	}
}

// TestCacheExplainEquivalence: the decomposition rendering (factor chain)
// must also be unaffected by the cache when serving a query whose predicate
// layout matches the one that populated it.
func TestCacheExplainEquivalence(t *testing.T) {
	t.Parallel()
	logSeedOnFailure(t, stressSeed)
	w := buildStressWorld(t, 2000, 6)
	plain := w.db.NewEstimator(w.pool, condsel.Diff)
	cached := w.db.NewEstimator(w.pool, condsel.Diff).UseCache(condsel.NewSelCache(4096))
	for pass := 0; pass < 2; pass++ {
		for qi, q := range w.queries {
			if got, want := cached.Explain(q), plain.Explain(q); got != want {
				t.Fatalf("seed %d pass %d query %d: explain diverged\n--- cached ---\n%s--- plain ---\n%s",
					stressSeed, pass, qi, got, want)
			}
		}
	}
}

// TestCardinalityBatchMatchesSequential: the worker-pool fan-out returns
// exactly what per-query sequential calls return, in input order, with and
// without the cache, for several worker counts.
func TestCardinalityBatchMatchesSequential(t *testing.T) {
	t.Parallel()
	logSeedOnFailure(t, stressSeed)
	w := buildStressWorld(t, 2000, 12)
	est := w.db.NewEstimator(w.pool, condsel.Diff)
	want := make([]float64, len(w.queries))
	for i, q := range w.queries {
		want[i] = est.Cardinality(q)
	}
	for _, workers := range []int{0, 1, 4, 8, 16, 64} {
		got := est.CardinalityBatch(w.queries, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: workers=%d query %d: batch %v != sequential %v",
					stressSeed, workers, i, got[i], want[i])
			}
		}
	}
	cachedEst := w.db.NewEstimator(w.pool, condsel.Diff).UseCache(condsel.NewSelCache(4096))
	for _, workers := range []int{1, 8} {
		got := cachedEst.CardinalityBatch(w.queries, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: cached workers=%d query %d: batch %v != sequential %v",
					stressSeed, workers, i, got[i], want[i])
			}
		}
	}
	if got := est.CardinalityBatch(nil, 8); len(got) != 0 {
		t.Fatalf("empty batch returned %v", got)
	}
	// SelectivityBatch shares the fan-out; spot-check it too.
	sels := est.SelectivityBatch(w.queries, 8)
	for i, q := range w.queries {
		if sels[i] != est.Selectivity(q) {
			t.Fatalf("seed %d: selectivity batch mismatch at %d", stressSeed, i)
		}
	}
}
