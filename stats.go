package condsel

import (
	"fmt"
	"io"

	"condsel/internal/engine"
	"condsel/internal/histogram"
	"condsel/internal/sit"
)

// HistogramKind selects the histogram construction algorithm for base
// statistics and SITs.
type HistogramKind int

const (
	// MaxDiff is the paper's choice: maxDiff(V,A) histograms.
	MaxDiff HistogramKind = iota
	// EquiDepth buckets carry roughly equal frequency.
	EquiDepth
	// EquiWidth buckets cover equal value ranges.
	EquiWidth
)

func (k HistogramKind) internal() histogram.Kind {
	switch k {
	case EquiDepth:
		return histogram.EquiDepth
	case EquiWidth:
		return histogram.EquiWidth
	default:
		return histogram.MaxDiff
	}
}

// StatsOptions tunes statistics construction. The zero value (or nil
// pointer) selects the paper's setup: 200-bucket maxDiff histograms with
// histogram-approximated diff values.
type StatsOptions struct {
	// Buckets is the per-histogram bucket budget (default 200).
	Buckets int
	// Kind is the histogram class (default MaxDiff).
	Kind HistogramKind
	// ExactDiff computes each SIT's diff value from raw data instead of
	// from the two histograms.
	ExactDiff bool
	// TwoDim additionally builds, for every workload query, the base 2-D
	// histograms pairing each join column with each filter attribute of
	// the same table. The estimator then derives conditional statistics
	// from them on the fly (the paper's §3.3 Example 3 mechanism) — an
	// alternative to SITs over join expressions that requires no join
	// execution at statistics-build time.
	TwoDim bool
	// Workers builds SITs with this many goroutines (sequential when ≤ 1).
	// The resulting pool is identical to a sequential build.
	Workers int
}

// Pool is a set of available statistics: base-table histograms and SITs.
type Pool struct {
	db      *DB
	pool    *sit.Pool
	builder *sit.Builder
}

func (db *DB) newBuilder(opts *StatsOptions) *sit.Builder {
	b := sit.NewBuilder(db.cat)
	b.Ev = db.ev // share the database's memoizing evaluator
	if opts != nil {
		b.Buckets = opts.Buckets
		b.Kind = opts.Kind.internal()
		b.ExactDiff = opts.ExactDiff
	}
	return b
}

// NewPool returns an empty statistics pool; add histograms and SITs with
// AddBaseHistogram and AddSIT.
func (db *DB) NewPool(opts *StatsOptions) *Pool {
	return &Pool{db: db, pool: sit.NewPool(db.cat), builder: db.newBuilder(opts)}
}

// BuildStatistics builds the pool J_maxJoinExpr for the given workload:
// base histograms for every attribute the queries mention, plus SITs over
// every connected join sub-expression with at most maxJoinExpr predicates
// (§5 "Available SITs"). maxJoinExpr = 0 yields base histograms only.
func (db *DB) BuildStatistics(queries []*Query, maxJoinExpr int, opts *StatsOptions) *Pool {
	b := db.newBuilder(opts)
	qs := make([]*engine.Query, len(queries))
	for i, q := range queries {
		qs[i] = q.q
	}
	var pool *sit.Pool
	if opts != nil && opts.Workers > 1 {
		pool = sit.BuildWorkloadPoolParallel(db.cat, qs, maxJoinExpr, opts.Workers, func(wb *sit.Builder) {
			wb.Buckets = opts.Buckets
			wb.Kind = opts.Kind.internal()
			wb.ExactDiff = opts.ExactDiff
		})
	} else {
		pool = sit.BuildWorkloadPool(b, qs, maxJoinExpr)
	}
	if opts != nil && opts.TwoDim {
		if _, err := sit.Build2DBaseSITs(b, pool, qs); err != nil {
			// Construction over base tables cannot fail for valid queries;
			// surface programming errors loudly.
			panic(err)
		}
	}
	return &Pool{db: db, pool: pool, builder: b}
}

// AddBaseHistogram builds and adds the ordinary histogram of the attribute
// ("table.column"). Adding an already-present statistic is a no-op.
func (p *Pool) AddBaseHistogram(attr string) error {
	a, err := p.db.cat.Attr(attr)
	if err != nil {
		return err
	}
	p.pool.Add(p.builder.BuildBase(a))
	return nil
}

// AddSIT builds and adds SIT(attr | joins): the histogram of attr over the
// result of executing the given equi-joins (each a [left, right] attribute
// pair). The join expression must be connected and cover attr's table.
func (p *Pool) AddSIT(attr string, joins ...[2]string) error {
	a, err := p.db.cat.Attr(attr)
	if err != nil {
		return err
	}
	if len(joins) == 0 {
		return p.AddBaseHistogram(attr)
	}
	expr := make([]engine.Pred, 0, len(joins))
	tables := engine.NewTableSet(p.db.cat.AttrTable(a))
	for _, j := range joins {
		la, err := p.db.cat.Attr(j[0])
		if err != nil {
			return err
		}
		ra, err := p.db.cat.Attr(j[1])
		if err != nil {
			return err
		}
		pred := engine.Join(la, ra)
		expr = append(expr, pred)
		tables = tables.Union(pred.Tables(p.db.cat))
	}
	comps := engine.Components(p.db.cat, expr, engine.FullPredSet(len(expr)))
	if len(comps) != 1 {
		return fmt.Errorf("condsel: SIT expression must be a connected join graph")
	}
	if !engine.PredsTables(p.db.cat, expr, comps[0]).Has(p.db.cat.AttrTable(a)) {
		return fmt.Errorf("condsel: SIT expression must cover %s's table", attr)
	}
	p.pool.Add(p.builder.Build(a, expr))
	return nil
}

// Add2DHistogram builds and adds the two-dimensional base histogram over
// (x, y) — typically a join column paired with a filter attribute of the
// same table — enabling the §3.3 Example 3 derivation of conditional
// statistics at estimation time.
func (p *Pool) Add2DHistogram(x, y string) error {
	xa, err := p.db.cat.Attr(x)
	if err != nil {
		return err
	}
	ya, err := p.db.cat.Attr(y)
	if err != nil {
		return err
	}
	s, err := p.builder.Build2D(xa, ya, nil)
	if err != nil {
		return err
	}
	p.pool.Add2D(s)
	return nil
}

// Size returns the number of statistics in the pool (base histograms
// included; 2-D histograms counted separately by Size2D).
func (p *Pool) Size() int { return p.pool.Size() }

// Size2D returns the number of two-dimensional histograms in the pool.
func (p *Pool) Size2D() int { return p.pool.Size2D() }

// Describe lists every statistic in the pool, in the paper's notation,
// with its diff value (1-D) or grid size (2-D).
func (p *Pool) Describe() []string {
	sits := p.pool.SITs()
	out := make([]string, 0, len(sits)+p.pool.Size2D())
	for _, s := range sits {
		out = append(out, fmt.Sprintf("%s  (diff=%.3f)", s.Name(p.db.cat), s.Diff))
	}
	for _, s := range p.pool.SITs2D() {
		out = append(out, fmt.Sprintf("%s  (%d cells)", s.Name(p.db.cat), s.Hist.NumCells()))
	}
	return out
}

// MaxJoins returns the sub-pool containing only statistics whose
// expressions have at most i join predicates (the paper's J_i pools).
func (p *Pool) MaxJoins(i int) *Pool {
	return &Pool{db: p.db, pool: p.pool.MaxJoins(i), builder: p.builder}
}

// Save serializes the pool as JSON, so statistics can be built once and
// reloaded with DB.LoadPool.
func (p *Pool) Save(w io.Writer) error { return p.pool.Encode(w) }

// LoadPool deserializes a pool previously written with Pool.Save. The
// snapshot's attribute names must resolve against this database's schema.
func (db *DB) LoadPool(r io.Reader) (*Pool, error) {
	pool, err := sit.ReadPool(db.cat, r)
	if err != nil {
		return nil, err
	}
	return &Pool{db: db, pool: pool, builder: db.newBuilder(nil)}, nil
}

// PoolHealth reports a pool's statistic hygiene: statistics are validated
// on registration and (in full) on first use, and ones that fail are
// quarantined — excluded from every candidate lookup — rather than allowed
// to poison estimates. See Pool.Health and Pool.Quarantine.
type PoolHealth struct {
	// SITs is the number of healthy 1-D statistics in service.
	SITs int
	// Quarantined is the number of statistics removed from service.
	Quarantined int
	// Reasons maps each quarantined statistic's canonical ID to why it was
	// pulled, e.g. "histogram: bucket 3 inverted range [9,0]".
	Reasons map[string]string
}

// Health returns a point-in-time snapshot of the pool's statistic hygiene.
func (p *Pool) Health() PoolHealth {
	h := p.pool.HealthSnapshot()
	out := PoolHealth{SITs: h.SITs, Quarantined: h.Quarantined}
	if len(h.Records) > 0 {
		out.Reasons = make(map[string]string, len(h.Records))
		for _, rec := range h.Records {
			out.Reasons[rec.ID] = rec.Reason
		}
	}
	return out
}

// Quarantine removes the statistic with the given canonical ID (as reported
// by PoolHealth.Reasons keys or sit IDs in Describe output) from service —
// an operator control for pulling a statistic suspected stale without
// rebuilding the pool. It reports whether the ID named an in-service
// statistic. Cross-query cache entries computed with the statistic are
// invalidated automatically (quarantining advances the pool's generation).
func (p *Pool) Quarantine(id, reason string) bool { return p.pool.Quarantine(id, reason) }

// ViewMatchCalls returns the number of view-matching (candidate lookup)
// calls issued against the pool — the efficiency metric of the paper's
// Figure 6.
func (p *Pool) ViewMatchCalls() int { return p.pool.MatchCalls() }

// ResetViewMatchCalls zeroes the view-matching counter.
func (p *Pool) ResetViewMatchCalls() { p.pool.ResetMatchCalls() }
