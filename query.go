package condsel

import (
	"fmt"

	"condsel/internal/engine"
	"condsel/internal/qtext"
)

// Query is an SPJ query in the paper's canonical form: a conjunction of
// equi-join and range predicates over the cartesian product of the
// referenced tables. Build queries with DB.Query.
type Query struct {
	db *DB
	q  *engine.Query
}

// String renders the query.
func (q *Query) String() string { return q.q.String() }

// NumPredicates returns the number of predicates (joins plus filters).
func (q *Query) NumPredicates() int { return len(q.q.Preds) }

// NumJoins returns the number of join predicates.
func (q *Query) NumJoins() int { return q.q.NumJoins() }

// NumFilters returns the number of filter predicates.
func (q *Query) NumFilters() int { return q.q.NumFilters() }

// Predicates returns a rendering of each predicate, indexed as accepted by
// Run.Subset.
func (q *Query) Predicates() []string {
	out := make([]string, len(q.q.Preds))
	for i, p := range q.q.Preds {
		out[i] = p.Format(q.db.cat)
	}
	return out
}

// QueryBuilder assembles a Query from joins and filters. Errors are
// deferred to Build so calls chain fluently.
type QueryBuilder struct {
	db    *DB
	preds []engine.Pred
	err   error
}

// Query starts a new query over the database.
func (db *DB) Query() *QueryBuilder { return &QueryBuilder{db: db} }

// Join adds the equi-join predicate left = right, with attributes given as
// "table.column".
func (b *QueryBuilder) Join(left, right string) *QueryBuilder {
	if b.err != nil {
		return b
	}
	la, err := b.db.cat.Attr(left)
	if err != nil {
		b.err = err
		return b
	}
	ra, err := b.db.cat.Attr(right)
	if err != nil {
		b.err = err
		return b
	}
	b.preds = append(b.preds, engine.Join(la, ra))
	return b
}

// Filter adds the range predicate lo ≤ attr ≤ hi (inclusive).
func (b *QueryBuilder) Filter(attr string, lo, hi int64) *QueryBuilder {
	if b.err != nil {
		return b
	}
	a, err := b.db.cat.Attr(attr)
	if err != nil {
		b.err = err
		return b
	}
	b.preds = append(b.preds, engine.Filter(a, lo, hi))
	return b
}

// FilterEq adds the equality predicate attr = v.
func (b *QueryBuilder) FilterEq(attr string, v int64) *QueryBuilder {
	return b.Filter(attr, v, v)
}

// FilterAtLeast adds attr ≥ lo.
func (b *QueryBuilder) FilterAtLeast(attr string, lo int64) *QueryBuilder {
	return b.Filter(attr, lo, engine.MaxValue)
}

// FilterAtMost adds attr ≤ hi.
func (b *QueryBuilder) FilterAtMost(attr string, hi int64) *QueryBuilder {
	return b.Filter(attr, engine.MinValue, hi)
}

// Build validates and returns the query.
func (b *QueryBuilder) Build() (*Query, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.preds) == 0 {
		return nil, fmt.Errorf("condsel: query needs at least one predicate")
	}
	if len(b.preds) >= 64 {
		return nil, fmt.Errorf("condsel: queries support at most 63 predicates")
	}
	return &Query{db: b.db, q: engine.NewQuery(b.db.cat, b.preds)}, nil
}

// MustBuild is Build that panics on error, for tests and examples with
// program-controlled queries.
func (b *QueryBuilder) MustBuild() *Query {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

// ParseQuery parses a textual query against the database's schema. The
// grammar accepts an optional SQL-ish prefix and a conjunction of
// predicates:
//
//	[SELECT * FROM t1, t2 WHERE] t1.a = t2.b AND t1.c BETWEEN 5 AND 10 AND t2.d >= 3
//
// Supported predicate forms: equi-joins (attr = attr), equality and
// one-sided comparisons against constants, BETWEEN, and "lo <= attr <= hi"
// ranges. Parsing a query's own String rendering reproduces the query.
func (db *DB) ParseQuery(text string) (*Query, error) {
	q, err := qtext.Parse(db.cat, text)
	if err != nil {
		return nil, err
	}
	return &Query{db: db, q: q}, nil
}
