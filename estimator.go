package condsel

import (
	"fmt"

	"condsel/internal/cascades"
	"condsel/internal/core"
	"condsel/internal/engine"
	"condsel/internal/gvm"
	"condsel/internal/planner"
)

// Model selects the error model ranking candidate decompositions.
type Model int

const (
	// NInd counts independence assumptions (§3.2).
	NInd Model = iota
	// Diff weighs assumptions by the SITs' distribution divergence (§3.5);
	// the paper's most accurate practical model.
	Diff
	// Opt is the oracle model: it ranks by true per-factor error, requires
	// exact evaluation, and exists for analysis only (§5).
	Opt
)

func (m Model) internal() core.ErrorModel {
	switch m {
	case NInd:
		return core.NInd{}
	case Opt:
		return core.Opt{}
	default:
		return core.Diff{}
	}
}

// String returns the model's paper name.
func (m Model) String() string { return m.internal().Name() }

// Estimator estimates query cardinalities with the getSelectivity dynamic
// program over a statistics pool.
//
// An Estimator is safe for concurrent use by multiple goroutines once
// configured: every estimation call builds its own per-query run state, and
// all shared state (catalog, pool, oracle, attached SelCache) is itself
// concurrency-safe. Configuration calls (UseCache) must happen before
// estimation starts. See DESIGN.md "Concurrency and caching".
type Estimator struct {
	db    *DB
	est   *core.Estimator
	cache *SelCache
}

// NewEstimator returns an estimator over the pool using the given error
// model.
func (db *DB) NewEstimator(pool *Pool, model Model) *Estimator {
	est := core.NewEstimator(db.cat, pool.pool, model.internal())
	if model == Opt {
		est.Oracle = db.ev
	}
	return &Estimator{db: db, est: est}
}

// Cardinality estimates the query's result size.
func (e *Estimator) Cardinality(q *Query) float64 {
	r := e.est.NewRun(q.q)
	card := r.EstimateCardinality(q.q.All())
	r.Release()
	return card
}

// Selectivity estimates the query's selectivity relative to the cartesian
// product of its tables.
func (e *Estimator) Selectivity(q *Query) float64 {
	r := e.est.NewRun(q.q)
	sel := r.GetSelectivity(q.q.All()).Sel
	r.Release()
	return sel
}

// Explain returns the chosen decomposition: each conditional factor with
// its estimate and the statistics used.
func (e *Estimator) Explain(q *Query) string {
	r := e.est.NewRun(q.q)
	s := r.Explain(q.q.All())
	r.Release()
	return s
}

// Run starts a per-query estimation session that memoizes across sub-query
// requests — the way an optimizer consumes the estimator (§4).
func (e *Estimator) Run(q *Query) *Run {
	return &Run{query: q, run: e.est.NewRun(q.q)}
}

// GroupCount estimates the number of groups of GROUP BY attr over the
// query's result — the Group-By extension the paper defers to its
// companion thesis. The estimate uses the best-matching SIT's distinct
// statistics on the query expression with a Cardenas correction for groups
// the remaining predicates empty out.
func (e *Estimator) GroupCount(q *Query, attr string) (float64, error) {
	a, err := e.db.cat.Attr(attr)
	if err != nil {
		return 0, err
	}
	r := e.est.NewRun(q.q)
	groups := r.EstimateGroups(a, q.q.All())
	r.Release()
	return groups, nil
}

// Run is a per-query estimation session. Sub-queries are addressed by
// predicate positions (see Query.Predicates).
type Run struct {
	query *Query
	run   *core.Run
}

// Cardinality estimates the sub-query restricted to the predicates at the
// given positions (all predicates when none are given).
func (r *Run) Cardinality(predIdx ...int) (float64, error) {
	set, err := r.subset(predIdx)
	if err != nil {
		return 0, err
	}
	return r.run.EstimateCardinality(set), nil
}

// Selectivity estimates the sub-query's selectivity.
func (r *Run) Selectivity(predIdx ...int) (float64, error) {
	set, err := r.subset(predIdx)
	if err != nil {
		return 0, err
	}
	return r.run.GetSelectivity(set).Sel, nil
}

// Explain renders the decomposition chosen for the sub-query.
func (r *Run) Explain(predIdx ...int) (string, error) {
	set, err := r.subset(predIdx)
	if err != nil {
		return "", err
	}
	return r.run.Explain(set), nil
}

func (r *Run) subset(predIdx []int) (engine.PredSet, error) {
	if len(predIdx) == 0 {
		return r.query.q.All(), nil
	}
	var set engine.PredSet
	for _, i := range predIdx {
		if i < 0 || i >= len(r.query.q.Preds) {
			return 0, fmt.Errorf("condsel: predicate index %d out of range [0,%d)",
				i, len(r.query.q.Preds))
		}
		set = set.Add(i)
	}
	return set, nil
}

// GVMEstimator is the greedy view-matching baseline (Bruno & Chaudhuri
// SIGMOD'02) the paper compares against; it is exposed for side-by-side
// evaluation.
type GVMEstimator struct {
	db  *DB
	est *gvm.Estimator
}

// NewGVMEstimator returns the baseline estimator over the pool.
func (db *DB) NewGVMEstimator(pool *Pool) *GVMEstimator {
	return &GVMEstimator{db: db, est: gvm.NewEstimator(db.cat, pool.pool)}
}

// Cardinality estimates the query's result size with greedy view matching.
func (g *GVMEstimator) Cardinality(q *Query) float64 {
	return g.est.EstimateCardinality(q.q, q.q.All())
}

// Selectivity estimates the query's selectivity with greedy view matching.
func (g *GVMEstimator) Selectivity(q *Query) float64 {
	return g.est.EstimateSelectivity(q.q, q.q.All())
}

// BestPlan chooses the cheapest join order for the query under this
// estimator's cardinalities (System-R style dynamic programming over
// connected table subsets, C_out cost = sum of join-output cardinalities)
// and returns the plan rendering and its estimated cost. It demonstrates
// how estimation quality translates into plan choice; the paper leaves
// that study as future work, and `cmd/sitbench -fig p1` quantifies it.
func (e *Estimator) BestPlan(q *Query) (string, float64, error) {
	run := e.est.NewRun(q.q)
	plan, err := planner.Choose(q.q, run.EstimateCardinality)
	if err != nil {
		run.Release()
		return "", 0, err
	}
	cost := planner.Cost(plan, run.EstimateCardinality)
	run.Release()
	return plan.String(q.q), cost, nil
}

// CoupledCardinality estimates the query through the §4.2 optimizer
// integration: a Cascades-style memo is seeded with the query's initial
// plan, explored with transformation rules, and every memo entry
// contributes one candidate decomposition. This demonstrates the pruned,
// optimizer-guided variant of getSelectivity.
func (e *Estimator) CoupledCardinality(q *Query) (float64, error) {
	m, err := cascades.NewMemo(q.q)
	if err != nil {
		return 0, err
	}
	m.Explore(20000)
	ce := cascades.NewCoupledEstimator(m, e.est)
	ce.EstimateAll()
	return ce.EstimateCardinality(), nil
}
