// Package condsel implements cardinality estimation with statistics on
// query expressions (SITs) using the conditional selectivity framework of
// Bruno & Chaudhuri, "Conditional Selectivity for Statistics on Query
// Expressions" (SIGMOD 2004).
//
// The package estimates the result sizes of select-project-join queries
// over in-memory relations. Beyond ordinary per-column histograms it
// supports SITs — histograms built over the result of a join expression —
// and combines all available statistics through the paper's getSelectivity
// dynamic program, which searches the space of conditional-selectivity
// decompositions for the most accurate estimate under a pluggable error
// model (NInd, Diff, or the oracle Opt).
//
// # Quick start
//
//	db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: 1, FactRows: 50000})
//	q, _ := db.Query().
//		Join("sales.customer_fk", "customer.id").
//		Filter("customer.hot", 9000, 10000).
//		Build()
//	pool := db.BuildStatistics([]*condsel.Query{q}, 2, nil) // SITs over ≤2-join expressions
//	est := db.NewEstimator(pool, condsel.Diff)
//	fmt.Println(est.Cardinality(q), db.ExactCardinality(q))
//
// The top-level types wrap the internal engine (columnar storage and exact
// evaluation), histogram, SIT, and search packages; see DESIGN.md for the
// full architecture.
package condsel

import (
	"fmt"

	"condsel/internal/datagen"
	"condsel/internal/engine"
)

// Column is one attribute's data for DB.AddTable. Nulls may be nil (no
// NULLs) or must match Values in length.
type Column struct {
	Name   string
	Values []int64
	Nulls  []bool
}

// DB is a database instance: a catalog of in-memory columnar tables plus an
// exact evaluator used for ground truth and for building SITs.
type DB struct {
	cat *engine.Catalog
	ev  *engine.Evaluator
	gen *datagen.DB // non-nil for generated snowflake databases
}

// NewDB returns an empty database; populate it with AddTable.
func NewDB() *DB {
	cat := engine.NewCatalog()
	return &DB{cat: cat, ev: engine.NewEvaluator(cat)}
}

// AddTable registers a table with the given columns. Column lengths must
// agree and names must be unique within the table.
func (db *DB) AddTable(name string, cols ...Column) error {
	t := &engine.Table{Name: name}
	for _, c := range cols {
		t.Cols = append(t.Cols, &engine.Column{Name: c.Name, Vals: c.Values, Null: c.Nulls})
	}
	_, err := db.cat.AddTable(t)
	return err
}

// SnowflakeConfig configures GenerateSnowflake; it mirrors the synthetic
// database of the paper's evaluation. The zero value selects reasonable
// defaults (50,000 fact rows, Zipf skew 1.2, 10% dangling keys).
type SnowflakeConfig struct {
	Seed               int64
	FactRows           int
	Skew               float64
	DanglingFrac       float64
	CorrelatedDangling bool
}

// GenerateSnowflake builds the paper's eight-table snowflake database:
// Zipf-skewed foreign keys, dimension attributes correlated with join
// fan-out, and dangling foreign keys. Workload generation (GenerateWorkload)
// is available on databases created this way.
func GenerateSnowflake(cfg SnowflakeConfig) *DB {
	gen := datagen.Generate(datagen.Config{
		Seed:               cfg.Seed,
		FactRows:           cfg.FactRows,
		Skew:               cfg.Skew,
		DanglingFrac:       cfg.DanglingFrac,
		CorrelatedDangling: cfg.CorrelatedDangling,
	})
	return &DB{cat: gen.Cat, ev: engine.NewEvaluator(gen.Cat), gen: gen}
}

// Tables returns the database's table names.
func (db *DB) Tables() []string { return db.cat.TableNames() }

// Attributes returns all qualified attribute names ("table.column").
func (db *DB) Attributes() []string { return db.cat.AttrNames() }

// NumRows returns the row count of the named table, or an error if the
// table does not exist.
func (db *DB) NumRows(table string) (int, error) {
	t := db.cat.TableByName(table)
	if t == nil {
		return 0, fmt.Errorf("condsel: unknown table %q", table)
	}
	return t.NumRows(), nil
}

// ExactCardinality evaluates the query exactly and returns its true result
// size. Evaluation is memoized per database across calls.
func (db *DB) ExactCardinality(q *Query) float64 {
	return db.ev.Count(q.q.Tables, q.q.Preds, q.q.All())
}

// ExactSelectivity returns the query's true selectivity relative to the
// cartesian product of its tables.
func (db *DB) ExactSelectivity(q *Query) float64 {
	return db.ev.Selectivity(q.q.Tables, q.q.Preds, q.q.All())
}

// ExactGroupCount evaluates the query and returns the true number of
// distinct values of attr ("table.column") over its result — the ground
// truth for Estimator.GroupCount. The attribute's table must be part of
// the query.
func (db *DB) ExactGroupCount(q *Query, attr string) (float64, error) {
	a, err := db.cat.Attr(attr)
	if err != nil {
		return 0, err
	}
	vals := db.ev.AttrValues(a, q.q.Preds, q.q.All())
	seen := make(map[int64]bool, len(vals))
	for _, v := range vals {
		seen[v] = true
	}
	return float64(len(seen)), nil
}

// Summary returns a human-readable description of the database.
func (db *DB) Summary() string {
	if db.gen != nil {
		return db.gen.Summary()
	}
	out := ""
	for _, name := range db.cat.TableNames() {
		t := db.cat.TableByName(name)
		out += fmt.Sprintf("%-10s %8d rows, %d attributes\n", name, t.NumRows(), len(t.Cols))
	}
	return out
}
