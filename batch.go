package condsel

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"condsel/internal/core"
	"condsel/internal/robust"
)

// SelCache is a sharded, bounded, concurrency-safe cache of getSelectivity
// results shared across queries (and across Estimators over the same
// database). Entries are keyed by the error-model name, the pool's content
// generation and the canonical predicate-set signature, so a cache can be
// attached to several estimators — even ones using different pools or
// models — without ever serving a mismatched entry. Estimates with a cache
// attached are bit-identical to estimates without one.
//
// A SelCache must not be shared across databases: predicate signatures are
// expressed in attribute IDs, which restart from zero in every catalog.
// (Pool generations make collisions across databases in one process
// impossible anyway, since generations are process-unique — the rule guards
// intent, not correctness.)
type SelCache struct {
	c *core.SelCacheStore
}

// NewSelCache returns a cache bounded to roughly maxEntries results
// (capacity is split evenly over the internal shards). maxEntries <= 0
// selects a default of 4096.
func NewSelCache(maxEntries int) *SelCache {
	return &SelCache{c: core.NewSelCache(maxEntries)}
}

// CacheStats is a point-in-time snapshot of a SelCache's counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache's counters.
func (c *SelCache) Stats() CacheStats {
	s := c.c.Stats()
	return CacheStats{
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
		Entries:   s.Entries,
		Capacity:  s.Capacity,
	}
}

// Reset drops every cached entry and zeroes the counters.
func (c *SelCache) Reset() { c.c.Reset() }

// UseCache attaches the cross-query selectivity cache to the estimator and
// returns the estimator for chaining. Subsequent estimation calls seed their
// per-query memo from the cache and publish fresh results back. Passing nil
// detaches any cache. Attach or detach before estimation starts, not
// concurrently with it.
func (e *Estimator) UseCache(c *SelCache) *Estimator {
	if c == nil {
		e.est.Cache = nil
		e.cache = nil
		return e
	}
	e.est.Cache = c.c
	e.cache = c
	return e
}

// Cache returns the attached cross-query cache, or nil.
func (e *Estimator) Cache() *SelCache { return e.cache }

// CardinalityBatch estimates every query's result size using a pool of
// worker goroutines (sequential when workers <= 1), returning one
// cardinality per query in input order. The estimator is shared by all
// workers — it is safe for concurrent use — so an attached SelCache lets
// queries with common sub-expressions reuse each other's decompositions.
// Results are identical to calling Cardinality on each query in sequence.
//
// Unlike a sequential loop, queries are isolated: a failure estimating one
// query (a panic, corrupt statistics) degrades that query's estimate through
// the ladder instead of unwinding the whole batch. Use
// CardinalityBatchRobust to observe per-query provenance and errors.
func (e *Estimator) CardinalityBatch(queries []*Query, workers int) []float64 {
	// Unlimited node budget and no deadline: healthy queries take the full-
	// DP tier, which is bit-identical to Cardinality.
	results := e.cardinalityBatch(nil, robust.Config{NodeBudget: -1}, queries, workers)
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.Cardinality
	}
	return out
}

// BatchResult is one query's outcome within a robust batch estimation.
type BatchResult struct {
	// Cardinality is the estimate — always finite and ≥ 0, even when Err is
	// set (the ladder's floor still answers).
	Cardinality float64
	// Provenance reports the ladder tier that produced the estimate.
	Provenance Provenance
	// Err is non-nil when estimation failed outright for this query (e.g. a
	// panic escaping every ladder tier); other queries are unaffected.
	Err error
}

// CardinalityBatchRobust estimates every query fault-tolerantly (see
// CardinalityRobust) over a worker pool, returning per-query estimates with
// provenance and isolation: one query's failure — however severe — is
// confined to its own BatchResult. The context's deadline applies to each
// query's expensive tiers.
func (e *Estimator) CardinalityBatchRobust(ctx context.Context, queries []*Query, workers int) []BatchResult {
	return e.cardinalityBatch(ctx, robust.Config{}, queries, workers)
}

func (e *Estimator) cardinalityBatch(ctx context.Context, cfg robust.Config, queries []*Query, workers int) []BatchResult {
	lad := robust.New(e.est, cfg)
	out := make([]BatchResult, len(queries))
	fanOut(len(queries), workers, func(i int) { out[i] = robustOne(ctx, lad, queries[i]) })
	return out
}

// robustOne estimates a single batch entry with last-line panic isolation on
// top of the ladder's own guards, so a worker goroutine can never die and
// take the batch (and process) with it.
func robustOne(ctx context.Context, lad *robust.Estimator, q *Query) (res BatchResult) {
	defer func() {
		if rec := recover(); rec != nil {
			reason := fmt.Sprintf("panic: %v", rec)
			res.Provenance.FallbackReason = reason
			res.Err = errors.New("condsel: estimation failed: " + reason)
		}
	}()
	if q == nil {
		res.Err = errors.New("condsel: nil query in batch")
		return res
	}
	res.Cardinality, res.Provenance = lad.Cardinality(ctx, q.q)
	return res
}

// SelectivityBatch is CardinalityBatch for selectivities.
func (e *Estimator) SelectivityBatch(queries []*Query, workers int) []float64 {
	out := make([]float64, len(queries))
	fanOut(len(queries), workers, func(i int) { out[i] = e.Selectivity(queries[i]) })
	return out
}

// fanOut runs fn(0..n-1) over a worker pool, mirroring the scheduling idiom
// of sit.BuildWorkloadPoolParallel: one jobs channel, workers draining it.
// Each index is processed exactly once; fn calls for distinct indices may
// run concurrently, so fn must only write state private to its index.
func fanOut(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// String renders cache stats compactly, e.g. for benchmark logs.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d entries=%d/%d (hit rate %.1f%%)",
		s.Hits, s.Misses, s.Evictions, s.Entries, s.Capacity, 100*s.HitRate())
}
