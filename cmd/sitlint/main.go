// Command sitlint runs the project's static-analysis suite
// (internal/analysis) over the module: project-specific invariants — no
// order-dependent map iteration in DP code, generation-scoped cache keys,
// lock discipline, side-component conditioning contracts, deterministic
// estimation code — checked with the standard library's go/ast and go/types
// only.
//
// Usage:
//
//	go run ./cmd/sitlint ./...          # whole module (testdata skipped)
//	go run ./cmd/sitlint ./internal/core ./internal/sit
//	go run ./cmd/sitlint -list          # describe the suite
//
// Diagnostics print as file:line:col: [analyzer] message. A finding is
// suppressed by a same-line or line-above comment
//
//	//lint:ignore <analyzer> <reason>
//
// The command exits 0 when the tree is clean, 1 when findings remain, and 2
// on load/type-check failures.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"condsel/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sitlint [-list] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		os.Exit(2)
	}

	pkgs, err := loadTargets(loader, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		os.Exit(2)
	}

	suite := analysis.Suite()
	found := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, suite) {
			fmt.Println(rel(d))
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "sitlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// loadTargets interprets the argument list: no arguments or "./..." loads
// the whole module (skipping testdata); anything else is a directory to
// load explicitly, which *does* allow testdata fixture packages so the
// suite can be demonstrated against them.
func loadTargets(loader *analysis.Loader, args []string) ([]*analysis.Package, error) {
	wholeModule := len(args) == 0
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			wholeModule = true
		}
	}
	if wholeModule {
		return loader.LoadAll()
	}
	var pkgs []*analysis.Package
	for _, arg := range args {
		pkg, err := loader.LoadDir(arg)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// rel renders a diagnostic with the file path relative to the working
// directory when possible, keeping output stable across checkouts.
func rel(d analysis.Diagnostic) string {
	wd, err := os.Getwd()
	if err != nil {
		return d.String()
	}
	if r, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !filepath.IsAbs(r) {
		d.Pos.Filename = r
	}
	return d.String()
}
