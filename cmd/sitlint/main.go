// Command sitlint runs the project's static-analysis suite
// (internal/analysis) over the module: project-specific invariants — no
// order-dependent map iteration in DP code, generation-scoped cache keys,
// lock discipline, side-component conditioning contracts, deterministic
// estimation code, arena lifetimes (userelease), context threading
// (ctxflow), field atomicity (atomicmix) and goroutine cancellability
// (goleak) — checked with the standard library's go/ast and go/types only.
//
// The suite is interprocedural: all target packages are analyzed in one
// session, dependency-first, so function summaries ("facts") exported by one
// package inform the call sites of another, and whole-program analyzers
// (atomicmix) report only after the full target set has been seen.
//
// Usage:
//
//	go run ./cmd/sitlint ./...                       # whole module (testdata skipped)
//	go run ./cmd/sitlint ./internal/core ./cmd/...   # explicit dirs and dir/... subtrees
//	go run ./cmd/sitlint -json ./...                 # machine-readable findings
//	go run ./cmd/sitlint -list                       # describe the suite, in suite order
//
// Diagnostics print as file:line:col: [analyzer] message. A finding is
// suppressed by a same-line or line-above comment
//
//	//lint:ignore <analyzer> <reason>
//
// where the reason is mandatory; directives that are malformed, name an
// unknown analyzer, or suppress nothing are themselves findings. -json
// emits every diagnostic — including suppressed ones, marked — as a JSON
// array of {file, line, col, analyzer, message, suppressed}.
//
// The command exits 0 when the tree is clean, 1 when unsuppressed findings
// remain, and 2 on load/type-check failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"condsel/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics (including suppressed ones) as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sitlint [-list] [-json] [./... | dir | dir/... ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		os.Exit(2)
	}

	pkgs, err := loadTargets(loader, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitlint:", err)
		os.Exit(2)
	}

	session := analysis.NewSession(analysis.Suite())
	session.Analyze(pkgs...)
	findings, suppressed := session.Finish()

	if *asJSON {
		if err := emitJSON(os.Stdout, findings, suppressed); err != nil {
			fmt.Fprintln(os.Stderr, "sitlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range findings {
			fmt.Println(rel(d))
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sitlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonDiagnostic is the -json wire shape of one diagnostic.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// emitJSON writes the merged diagnostic streams as one JSON array, findings
// first (each stream is already position-sorted).
func emitJSON(w *os.File, findings, suppressed []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(findings)+len(suppressed))
	for _, d := range append(append([]analysis.Diagnostic(nil), findings...), suppressed...) {
		out = append(out, jsonDiagnostic{
			File:       relPath(d.Pos.Filename),
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// loadTargets interprets the argument list: no arguments or "./..." loads
// the whole module (skipping testdata); "dir/..." loads the subtree under
// dir; anything else is a directory to load explicitly, which *does* allow
// testdata fixture packages so the suite can be demonstrated against them.
func loadTargets(loader *analysis.Loader, args []string) ([]*analysis.Package, error) {
	if len(args) == 0 {
		return loader.LoadAll()
	}
	var pkgs []*analysis.Package
	seen := make(map[string]bool)
	add := func(list ...*analysis.Package) {
		for _, p := range list {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			add(all...)
		case strings.HasSuffix(arg, "/..."):
			sub, err := loader.LoadUnder(strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			add(sub...)
		default:
			pkg, err := loader.LoadDir(arg)
			if err != nil {
				return nil, err
			}
			add(pkg)
		}
	}
	return pkgs, nil
}

// rel renders a diagnostic with the file path relative to the working
// directory when possible, keeping output stable across checkouts.
func rel(d analysis.Diagnostic) string {
	d.Pos.Filename = relPath(d.Pos.Filename)
	return d.String()
}

// relPath relativizes a file path against the working directory when the
// result stays inside it.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if r, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(r) {
		return r
	}
	return name
}
