// Command sitnode runs one member of the distributed statistics tier: the
// estimation service of sitserve fronting a cluster node that owns a
// consistent-hash shard of the SIT pool, replicates peer shards over the
// SITW wire protocol, fences stale state with per-node epochs, and answers
// from its local degradation ladder — with provenance — whenever a peer
// shard is unreachable.
//
// Every node deterministically provisions the same synthetic database and
// full pool from the shared seed, then keeps only its ring shard; peers are
// learned from the -peers address book. Estimates never error on partition:
// they degrade with `remote-shard-unavailable: <peer>/<reason>` provenance.
//
// Usage:
//
//	sitnode -id node-0 -nodes 3 -peers node-1=host:9091,node-2=host:9092
//	        [-raddr :9090] [-addr :8080] [-state dir] [-fact N] [-seed N]
//	        [-queries N] [-joins N] [-maxpool N] [-cache N] [-repl-ms N]
//	        [-drain-s N]
//
// -state names a directory whose EPOCH file persists the node's rebuild
// epoch across restarts; without it the epoch restarts at 1 and peers that
// admitted the previous run fence every frame from the new one.
//
// Endpoints are sitserve's (/estimate, /estimate/batch, /metrics, /healthz,
// /readyz) plus condsel_cluster_* gauges on /metrics; -raddr speaks the
// replication protocol to peers.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"condsel/internal/cluster"
	"condsel/internal/core"
	"condsel/internal/datagen"
	"condsel/internal/serve"
	"condsel/internal/sit"
	"condsel/internal/workload"
)

func main() {
	var (
		id       = flag.String("id", "node-0", "this node's id (must be one of node-0..node-{N-1})")
		nodes    = flag.Int("nodes", 3, "cluster membership size N")
		peers    = flag.String("peers", "", "peer address book: id=host:port,id=host:port")
		raddr    = flag.String("raddr", ":9090", "replication listen address")
		addr     = flag.String("addr", ":8080", "estimation service listen address")
		fact     = flag.Int("fact", 20000, "fact table rows")
		seed     = flag.Int64("seed", 42, "shared random seed (must match across the cluster)")
		queries  = flag.Int("queries", 25, "workload queries used to build the SIT pool")
		joins    = flag.Int("joins", 3, "joins per workload query")
		maxPool  = flag.Int("maxpool", 3, "largest SIT pool J_i to build")
		cacheCap = flag.Int("cache", 4096, "selectivity cache capacity (0 disables)")
		replMs   = flag.Int("repl-ms", 2000, "anti-entropy replication interval")
		drainS   = flag.Int("drain-s", 10, "graceful-drain deadline in seconds")
		stateDir = flag.String("state", "", "state directory persisting the rebuild epoch across restarts (empty: ephemeral epoch, peers will fence a restarted node)")
	)
	flag.Parse()
	// The process-root context is minted here and only here ("no minted
	// roots past main"): cancelled on SIGTERM/SIGINT, everything below
	// inherits it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, stop, options{
		id: *id, nodes: *nodes, peers: *peers, raddr: *raddr, addr: *addr,
		fact: *fact, seed: *seed, queries: *queries, joins: *joins,
		maxPool: *maxPool, cacheCap: *cacheCap, stateDir: *stateDir,
		repl:  time.Duration(*replMs) * time.Millisecond,
		drain: time.Duration(*drainS) * time.Second,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sitnode:", err)
		os.Exit(1)
	}
}

type options struct {
	id       string
	nodes    int
	peers    string
	raddr    string
	addr     string
	fact     int
	seed     int64
	queries  int
	joins    int
	maxPool  int
	cacheCap int
	stateDir string
	repl     time.Duration
	drain    time.Duration
}

// parsePeers splits "id=host:port,id=host:port" into the transport book.
func parsePeers(s string) (map[cluster.NodeID]string, error) {
	book := make(map[cluster.NodeID]string)
	if s == "" {
		return book, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addr, ok := strings.Cut(entry, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=host:port)", entry)
		}
		book[cluster.NodeID(id)] = addr
	}
	return book, nil
}

func run(ctx context.Context, stop context.CancelFunc, opt options) error {
	if opt.nodes < 1 {
		return fmt.Errorf("-nodes must be at least 1")
	}
	book, err := parsePeers(opt.peers)
	if err != nil {
		return err
	}

	// Every member derives the identical database, workload and full pool
	// from the shared seed, then keeps its ring shard. A real deployment
	// would ship shards; the reproduction regenerates them, which keeps
	// cross-node bit-identity checkable from the outside.
	fmt.Printf("sitnode %s: generating snowflake database (fact=%d seed=%d)\n", opt.id, opt.fact, opt.seed)
	db := datagen.Generate(datagen.Config{Seed: opt.seed, FactRows: opt.fact})
	gen := workload.NewGenerator(db, workload.Config{
		Seed: opt.seed, NumQueries: opt.queries, Joins: opt.joins, Filters: 3,
	})
	wl, err := gen.Generate()
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	full := sit.BuildWorkloadPoolParallel(db.Cat, wl, opt.maxPool, runtime.GOMAXPROCS(0), nil)

	ids := cluster.HarnessIDs(opt.nodes)
	self := cluster.NodeID(opt.id)
	ring, err := cluster.NewRing(ids, 0)
	if err != nil {
		return err
	}
	var cache *core.SelCacheStore
	if opt.cacheCap > 0 {
		cache = core.NewSelCache(opt.cacheCap)
	}
	// The rebuild epoch must outlive the process — peers fence on it, and a
	// restarted node that reuses an old epoch is fenced out forever. With a
	// state dir the EpochFile counts restarts durably; without one every
	// boot stamps epoch 1 and only a fresh cluster will admit this node.
	var (
		epoch     uint64
		epochSink func(uint64)
	)
	if opt.stateDir != "" {
		ef, e, err := cluster.OpenEpochFile(opt.stateDir)
		if err != nil {
			return err
		}
		epoch = e
		epochSink = func(ep uint64) {
			if err := ef.Store(ep); err != nil {
				fmt.Fprintf(os.Stderr, "sitnode %s: persisting epoch %d: %v\n", opt.id, ep, err)
			}
		}
	} else {
		fmt.Printf("sitnode %s: no -state dir: epoch is ephemeral, peers will fence this node after a restart\n", opt.id)
	}

	tr := cluster.NewTCPTransport(book)
	node, err := cluster.NewNode(cluster.Config{
		Self:      self,
		Nodes:     ids,
		Seed:      opt.seed,
		Cache:     cache,
		Epoch:     epoch,
		EpochSink: epochSink,
	}, db.Cat, ring.Shard(full, self), tr)
	if err != nil {
		return err
	}
	local := len(node.MergedPool().SITs())
	fmt.Printf("sitnode %s: owns %d of %d SITs (epoch %d)\n", opt.id, local, len(full.SITs()), node.Stamp().Epoch)

	rln, err := net.Listen("tcp", opt.raddr)
	if err != nil {
		return fmt.Errorf("replication listen: %w", err)
	}
	fmt.Printf("sitnode %s: replication on %s\n", opt.id, rln.Addr())
	var wg sync.WaitGroup
	replErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		replErr <- node.ServeReplication(ctx, rln)
	}()

	// Best-effort warm-up, then anti-entropy: an unreachable peer at boot
	// is just the degraded-start case, not an error.
	if err := node.WarmUp(ctx); err != nil {
		fmt.Printf("sitnode %s: starting degraded: %v\n", opt.id, err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		node.ReplicateLoop(ctx, opt.repl)
	}()

	srv, err := serve.New(serve.Config{
		Catalog:   db.Cat,
		Estimator: node,
		Cache:     cache,
		Pool:      func() *sit.Pool { return node.MergedPool() },
		Cluster: func() serve.ClusterCounters {
			c := node.Counters()
			return serve.ClusterCounters{
				Nodes:            c.Nodes,
				PeersAdmitted:    c.PeersAdmitted,
				PeersMissing:     c.PeersMissing,
				PeersTripped:     c.PeersTripped,
				Epoch:            c.Epoch,
				LocalGeneration:  c.LocalGeneration,
				MergedGeneration: c.MergedGeneration,
				Replications:     c.Replications,
				ReplFailures:     c.ReplFailures,
				FenceRejections:  c.FenceRejections,
				Degraded:         c.Degraded,
				Retries:          c.Retries,
				BreakerTrips:     c.BreakerTrips,
			}
		},
		DrainDeadline: opt.drain,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	fmt.Printf("sitnode %s: serving estimates on %s\n", opt.id, ln.Addr())

	serveErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr <- srv.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		stop()
		wg.Wait()
		return fmt.Errorf("serve: %w", err)
	case err := <-replErr:
		stop()
		wg.Wait()
		if err != nil {
			return fmt.Errorf("replication: %w", err)
		}
		return fmt.Errorf("replication listener closed")
	case <-ctx.Done():
	}

	// Graceful drain mirrors sitserve: stop admitting, finish in-flight
	// requests under the drain deadline. stop() restores default signal
	// handling first so a second SIGTERM kills the process.
	stop()
	fmt.Printf("sitnode %s: draining\n", opt.id)
	drainCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), opt.drain+time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(drainCtx)
	wg.Wait() // replication server and anti-entropy exit on the cancelled root
	if shutdownErr != nil {
		return shutdownErr
	}
	fmt.Printf("sitnode %s: drained cleanly\n", opt.id)
	return nil
}
