// Command sitgen generates the paper's synthetic snowflake database, builds
// the SIT pools J_0 … J_max for a random workload, and prints statistics
// about both — a quick way to inspect what the experiments run on.
//
// Usage:
//
//	sitgen [-fact N] [-seed N] [-queries N] [-joins N] [-maxpool N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	condsel "condsel"
)

func main() {
	var (
		fact    = flag.Int("fact", 20000, "fact table rows")
		seed    = flag.Int64("seed", 42, "random seed")
		queries = flag.Int("queries", 10, "workload queries")
		joins   = flag.Int("joins", 3, "joins per workload query")
		maxPool = flag.Int("maxpool", 3, "largest SIT pool J_i to build")
		verbose = flag.Bool("v", false, "list every SIT in the largest pool")
		save    = flag.String("save", "", "write the largest pool as JSON to this file")
	)
	flag.Parse()

	db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: *seed, FactRows: *fact})
	fmt.Println("database:")
	fmt.Print(db.Summary())

	edges, err := db.SnowflakeJoins()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitgen:", err)
		os.Exit(1)
	}
	fmt.Println("\nforeign-key joins:")
	for _, e := range edges {
		fmt.Printf("  %s = %s\n", e[0], e[1])
	}

	wl, err := db.GenerateWorkload(condsel.WorkloadOptions{
		Seed: *seed, NumQueries: *queries, Joins: *joins, Filters: 3,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitgen:", err)
		os.Exit(1)
	}
	fmt.Printf("\nworkload: %d queries with %d joins + 3 filters; first query:\n  %s\n",
		len(wl), *joins, wl[0])

	fmt.Println("\nSIT pools:")
	full := db.BuildStatistics(wl, *maxPool, nil)
	for i := 0; i <= *maxPool; i++ {
		fmt.Printf("  J%d: %4d statistics\n", i, full.MaxJoins(i).Size())
	}
	if *verbose {
		fmt.Println("\nlargest pool contents:")
		for _, d := range full.Describe() {
			fmt.Println(" ", d)
		}
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sitgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := full.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "sitgen:", err)
			os.Exit(1)
		}
		fmt.Printf("\npool written to %s (reload with DB.LoadPool)\n", *save)
	}
}
