// Command sitbench regenerates the figures of Bruno & Chaudhuri (SIGMOD
// 2004) over a freshly generated snowflake database: the GVM-vs-GS-nInd
// accuracy scatter (Figure 5), view-matching call counts (Figure 6),
// average absolute cardinality error per SIT pool and technique
// (Figure 7), the estimation-time breakdown (Figure 8), the Lemma 1
// decomposition-count table, the ablation tables A1–A6, the
// plan-quality study P1, the estimation-service throughput benchmark
// ("est": shared estimator under concurrent load, with or without the
// cross-query selectivity cache), and the getSelectivity hot-path benchmark
// ("dp": NoFastPath baseline vs the optimized DP across query sizes, search
// modes and error models), the large-scale soak harness ("soak": a grown
// 100+-table schema driven through repeated drift → rebuild → hot-swap →
// fault → recovery arcs under phased adversarial workloads), and the
// service-layer load arc ("serve": a real sitserve-shaped HTTP server driven
// through open → overload → drain phases, recording per-phase status/tier/
// shed distributions and the un-armed service overhead).
//
// Usage:
//
//	sitbench [-fig all|5|6|7|8|lemma1|ablations|a1..a6|p1|est|dp|robust|lifecycle|soak|serve]
//	         [-fact N] [-queries N] [-joins 3,5,7] [-maxpool N]
//	         [-subsets N] [-seed N] [-filtersel F] [-csv FILE]
//	         [-workers N] [-cache] [-cachecap N] [-rounds N] [-json FILE]
//	         [-sizes 6,8,10,12] [-iters N] [-cycles N]
//	         [-tables N] [-duration D] [-phases flash,churn,...]
//
// With -csv the selected figure's data is additionally written as CSV
// (single figures only, not the "all"/"ablations" bundles). -fig est
// always measures the sequential cache-off baseline alongside the
// requested -workers/-cache configuration; -fig dp always measures the
// NoFastPath baseline alongside the optimized estimator over -sizes
// predicate counts. -fig robust times the un-armed degradation ladder
// against the plain estimator (bit-identical answers are asserted, not
// assumed) and, with -faults (the default), arms each fault-injection
// point in turn and records which ladder tiers answer. -fig lifecycle
// measures the statistics lifecycle manager: un-armed hot-path overhead of
// the manager-fronted estimator (contract: ≤ 1%), rebuild + hot-swap
// throughput, and crash-safe snapshot write/recover latency. -fig soak runs
// the internal/soak harness: -tables sizes the grown schema, -cycles runs
// that many compressed arcs (deterministic event log, the CI mode),
// -duration keeps cycling until the clock expires, and -phases selects a
// subset of the arc. -fig serve drives the estimation service itself:
// -slots sizes admission, -phase the per-phase wall clock, and the report
// asserts-by-numbers the overload contract (zero 5xx, provenance on every
// answer, sheds absorbed by cheaper tiers). All six write a -json artifact
// in the shared condsel-bench/v1 envelope (defaults: BENCH_estimation.json
// for est, BENCH_dp.json for dp, BENCH_robust.json for robust,
// BENCH_lifecycle.json for lifecycle, BENCH_soak.json for soak,
// BENCH_serve.json for serve).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"condsel/internal/bench"
	"condsel/internal/soak"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: all, 5, 6, 7, 8, lemma1, ablations, a1..a7, p1, est, dp, robust, lifecycle, soak, serve, cluster")
		fact      = flag.Int("fact", 20000, "fact table rows")
		queries   = flag.Int("queries", 25, "queries per workload")
		joins     = flag.String("joins", "3,5,7", "workload join counts (comma separated)")
		maxPool   = flag.Int("maxpool", 7, "largest SIT pool J_i")
		subsets   = flag.Int("subsets", 200, "max sub-queries sampled per query")
		seed      = flag.Int64("seed", 42, "random seed")
		filterSel = flag.Float64("filtersel", 0, "target filter selectivity (default 0.05; the paper also reports ≈0.5)")
		csvPath   = flag.String("csv", "", "write the figure's data as CSV to this file")
		workers   = flag.Int("workers", 1, "estimation goroutines for -fig est")
		useCache  = flag.Bool("cache", false, "attach the cross-query selectivity cache for -fig est")
		cacheCap  = flag.Int("cachecap", 0, "cache capacity in entries for -fig est (0 = default)")
		rounds    = flag.Int("rounds", 3, "workload passes for -fig est")
		jsonPath  = flag.String("json", "", "JSON artifact path for -fig est/dp (default per figure)")
		sizes     = flag.String("sizes", "6,8,10,12", "query predicate counts for -fig dp")
		gatePath  = flag.String("gate", "", "for -fig dp: committed BENCH_dp.json to gate against (0 allocs/op on the cached path, cached/optimized time ratio within 10%)")
		iters     = flag.Int("iters", 0, "timed passes per variant for -fig dp (0 = default)")
		withFault = flag.Bool("faults", true, "for -fig robust: also arm each fault point and record the ladder's tier distribution")
		cycles    = flag.Int("cycles", 0, "full stale→rebuilt pool cycles for -fig lifecycle, or arc cycles for -fig soak (0 = default)")
		tables    = flag.Int("tables", 0, "grown-schema table count for -fig soak (0 = default 104)")
		duration  = flag.Duration("duration", 0, "for -fig soak: keep cycling until this wall-clock budget expires (0 = -cycles mode)")
		phases    = flag.String("phases", "", "for -fig soak: comma-separated phase subset (default: the full arc)")
		slots     = flag.Int("slots", 0, "admission slots for -fig serve (0 = default 4)")
		nodes     = flag.Int("nodes", 0, "cluster size for -fig cluster (0 = default 3)")
		phaseDur  = flag.Duration("phase", 0, "per-phase wall clock for -fig serve (0 = default 3s)")
	)
	flag.Parse()

	js, err := parseInts(*joins)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sitbench: bad -joins: %v\n", err)
		os.Exit(2)
	}

	opts := bench.Options{
		Seed:               *seed,
		FactRows:           *fact,
		QueriesPerWorkload: *queries,
		Joins:              js,
		MaxPoolJoins:       *maxPool,
		SubsetCap:          *subsets,
		FilterSelectivity:  *filterSel,
	}

	estCfg := bench.EstBenchConfig{
		Workers:       *workers,
		Cache:         *useCache,
		CacheCapacity: *cacheCap,
		Rounds:        *rounds,
	}

	ns, err := parseInts(*sizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sitbench: bad -sizes: %v\n", err)
		os.Exit(2)
	}
	dpCfg := bench.DPBenchConfig{Sizes: ns, Iters: *iters}
	robustCfg := bench.RobustBenchConfig{Iters: *iters, Faults: *withFault}
	lifecycleCfg := bench.LifecycleBenchConfig{Iters: *iters, Cycles: *cycles}
	serveCfg := bench.ServeBenchConfig{Slots: *slots, Phase: *phaseDur}
	clusterCfg := bench.ClusterBenchConfig{Nodes: *nodes}
	soakCfg := soak.Config{
		Seed:     *seed,
		Tables:   *tables,
		Cycles:   *cycles,
		Duration: *duration,
		Phases:   parsePhases(*phases),
		Progress: os.Stdout,
	}

	start := time.Now()
	if err := run(*fig, opts, *csvPath, estCfg, dpCfg, robustCfg, lifecycleCfg, soakCfg, serveCfg, clusterCfg, *jsonPath, *gatePath); err != nil {
		fmt.Fprintf(os.Stderr, "sitbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
}

func run(fig string, opts bench.Options, csvPath string, estCfg bench.EstBenchConfig, dpCfg bench.DPBenchConfig, robustCfg bench.RobustBenchConfig, lifecycleCfg bench.LifecycleBenchConfig, soakCfg soak.Config, serveCfg bench.ServeBenchConfig, clusterCfg bench.ClusterBenchConfig, jsonPath, gatePath string) error {
	withJSON := func(def string, write func(*os.File) error) error {
		path := jsonPath
		if path == "" {
			path = def
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := write(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", path)
		return nil
	}
	withCSV := func(write func(*os.File) error) error {
		if csvPath == "" {
			return nil
		}
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return write(f)
	}

	switch fig {
	case "all":
		e := bench.NewEnv(opts)
		e.RunAll(os.Stdout)
	case "5":
		e := bench.NewEnv(opts)
		points := e.Fig5()
		bench.RenderFig5(os.Stdout, points)
		return withCSV(func(f *os.File) error { return bench.WriteFig5CSV(f, points) })
	case "6":
		e := bench.NewEnv(opts)
		rows := e.Fig6()
		bench.RenderFig6(os.Stdout, rows)
		return withCSV(func(f *os.File) error { return bench.WriteFig6CSV(f, rows) })
	case "7":
		e := bench.NewEnv(opts)
		cells := e.Fig7()
		bench.RenderFig7(os.Stdout, cells)
		return withCSV(func(f *os.File) error { return bench.WriteFig7CSV(f, cells) })
	case "8":
		e := bench.NewEnv(opts)
		cells := e.Fig8()
		bench.RenderFig8(os.Stdout, cells)
		return withCSV(func(f *os.File) error { return bench.WriteFig8CSV(f, cells) })
	case "lemma1":
		rows := bench.Lemma1(12)
		bench.RenderLemma1(os.Stdout, rows)
		return withCSV(func(f *os.File) error { return bench.WriteLemma1CSV(f, rows) })
	case "ablations":
		e := bench.NewEnv(opts)
		e.RunAblations(os.Stdout)
	case "a1", "a2", "a3", "a4", "a5", "a6", "a7":
		e := bench.NewEnv(opts)
		var title string
		var cells []bench.AblationCell
		switch fig {
		case "a1":
			title, cells = "Table A1 — histogram class (GS-Diff, pool J2)", e.AblationHistogramKind()
		case "a2":
			title, cells = "Table A2 — histogram bucket budget (GS-Diff, pool J2)", e.AblationBuckets(nil)
		case "a3":
			title, cells = "Table A3 — SITs vs join synopses", e.AblationSynopses(nil)
		case "a4":
			title, cells = "Table A4 — full DP vs §4.2 memo coupling", e.AblationMemoCoupling()
		case "a5":
			title, cells = "Table A5 — diff_H source", e.AblationDiffSource()
		case "a6":
			title, cells = "Table A6 — 1-D SITs vs 2-D base histograms + derivation", e.Ablation2D()
		case "a7":
			title, cells = "Table A7 — SITs vs LEO-style feedback", e.AblationFeedback()
		}
		bench.RenderAblation(os.Stdout, title, cells)
		return withCSV(func(f *os.File) error { return bench.WriteAblationCSV(f, cells) })
	case "p1":
		e := bench.NewEnv(opts)
		cells := e.PlanQuality()
		bench.RenderPlanQuality(os.Stdout, cells)
		return withCSV(func(f *os.File) error { return bench.WritePlanQualityCSV(f, cells) })
	case "est":
		e := bench.NewEnv(opts)
		report := e.EstimationReport(estCfg)
		bench.RenderEstimation(os.Stdout, report)
		return withJSON("BENCH_estimation.json", func(f *os.File) error {
			return bench.WriteEstimationJSON(f, report)
		})
	case "dp":
		e := bench.NewEnv(opts)
		report := e.DPBench(dpCfg)
		bench.RenderDP(os.Stdout, report)
		if err := withJSON("BENCH_dp.json", func(f *os.File) error {
			return bench.WriteDPJSON(f, report)
		}); err != nil {
			return err
		}
		if gatePath != "" {
			if err := bench.GateDP(report, gatePath, 0.10); err != nil {
				return err
			}
			fmt.Printf("gate: ok (0 allocs/op on cached path, ratio within 10%% of %s)\n", gatePath)
		}
		return nil
	case "robust":
		e := bench.NewEnv(opts)
		report := e.RobustBench(robustCfg)
		bench.RenderRobust(os.Stdout, report)
		return withJSON("BENCH_robust.json", func(f *os.File) error {
			return bench.WriteRobustJSON(f, report)
		})
	case "lifecycle":
		e := bench.NewEnv(opts)
		report := e.LifecycleBench(lifecycleCfg)
		bench.RenderLifecycle(os.Stdout, report)
		return withJSON("BENCH_lifecycle.json", func(f *os.File) error {
			return bench.WriteLifecycleJSON(f, report)
		})
	case "serve":
		e := bench.NewEnv(opts)
		report := e.ServeBench(serveCfg)
		bench.RenderServe(os.Stdout, report)
		return withJSON("BENCH_serve.json", func(f *os.File) error {
			return bench.WriteServeJSON(f, report)
		})
	case "cluster":
		e := bench.NewEnv(opts)
		report := e.ClusterBench(clusterCfg)
		bench.RenderCluster(os.Stdout, report)
		return withJSON("BENCH_cluster.json", func(f *os.File) error {
			return bench.WriteClusterJSON(f, report)
		})
	case "soak":
		h, err := soak.New(soakCfg)
		if err != nil {
			return err
		}
		report, err := h.Run(context.Background())
		if err != nil {
			return err
		}
		renderSoak(os.Stdout, report)
		return withJSON("BENCH_soak.json", func(f *os.File) error {
			return bench.WriteReport(f, "soak", report.Seed, report)
		})
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

// parsePhases splits a comma-separated phase list; empty means the full arc
// (soak applies its own default). Phase-name validation is soak.New's job.
func parsePhases(csv string) []string {
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// renderSoak prints the human-readable soak summary: run shape, aggregate
// quality and lifecycle counters, then the per-phase time series.
func renderSoak(w *os.File, r *soak.Report) {
	fmt.Fprintf(w, "\nSoak — %d tables / %d clusters / %d shards, %d fact rows, seed %d\n",
		r.Tables, r.Clusters, r.Shards, r.FactRows, r.Seed)
	fmt.Fprintf(w, "cycles=%d queries=%d (%.0f/s over %.1fs)\n",
		r.Cycles, r.TotalQueries, r.QueriesPerSec, r.DurationSeconds)

	tiers := make([]string, 0, len(r.TierTotals))
	for t := range r.TierTotals {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	fmt.Fprintf(w, "tiers:")
	for _, t := range tiers {
		fmt.Fprintf(w, " %s=%d", t, r.TierTotals[t])
	}
	fmt.Fprintf(w, "\nfault-free no-sit share: %.2f%% (%d of %d)\n",
		r.FaultFreeNoSITPct, r.FaultFreeNoSIT, r.FaultFreeQueries)
	fmt.Fprintf(w, "lifecycle: rebuilds=%d failures=%d swaps=%d parked=%d\n",
		r.Rebuilds, r.Failures, r.Swaps, r.Parked)
	fmt.Fprintf(w, "cache: hits=%d misses=%d evictions=%d\n",
		r.CacheHits, r.CacheMisses, r.CacheEvictions)
	fmt.Fprintf(w, "recovery: snapshots=%d torn-rejected=%d bit-identical=%v\n",
		r.SnapshotRecoveries, r.CorruptSnapshots, r.BitIdentical)

	fmt.Fprintf(w, "\n%-6s %-12s %8s %9s %9s %9s %9s\n",
		"cycle", "phase", "queries", "q/s", "p99 ms", "degraded", "served")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%-6d %-12s %8d %9.0f %9.3f %9d %9d\n",
			p.Cycle, p.Phase, p.Queries, p.QueriesPerSec, p.P99Ms, p.Degraded, p.CacheServed)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", csv)
	}
	return out, nil
}
