// Command sitexplain builds a query over the generated snowflake database
// and prints, side by side, the true cardinality, the classic
// independence-assumption estimate, the greedy view-matching (GVM)
// estimate, and the getSelectivity estimates under each error model —
// together with the decomposition getSelectivity chose.
//
// Predicates are given with repeatable flags:
//
//	sitexplain -join sales.customer_fk=customer.id \
//	           -filter customer.hot:9000:10000 \
//	           [-pool 2] [-fact 20000] [-seed 42]
//
// With no predicate flags, a random 3-join workload query is explained.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	condsel "condsel"
)

type repeated []string

func (r *repeated) String() string { return strings.Join(*r, ",") }

func (r *repeated) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var joins, filters repeated
	flag.Var(&joins, "join", "equi-join predicate left=right (repeatable)")
	flag.Var(&filters, "filter", "range predicate attr:lo:hi (repeatable)")
	var (
		fact  = flag.Int("fact", 20000, "fact table rows")
		seed  = flag.Int64("seed", 42, "random seed")
		pool  = flag.Int("pool", 2, "SIT pool J_i (expressions with at most i joins)")
		query = flag.String("query", "", `textual query, e.g. "sales.customer_fk = customer.id AND customer.hot BETWEEN 9000 AND 10000"`)
	)
	flag.Parse()

	db := condsel.GenerateSnowflake(condsel.SnowflakeConfig{Seed: *seed, FactRows: *fact})

	var q *condsel.Query
	var err error
	if *query != "" {
		q, err = db.ParseQuery(*query)
	} else {
		q, err = buildQuery(db, joins, filters, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitexplain:", err)
		os.Exit(2)
	}
	fmt.Println("query:", q)

	stats := db.BuildStatistics([]*condsel.Query{q}, *pool, nil)
	noSit := stats.MaxJoins(0)
	fmt.Printf("statistics: %d in pool J%d (%d base histograms)\n\n",
		stats.Size(), *pool, noSit.Size())

	truth := db.ExactCardinality(q)
	fmt.Printf("%-28s %14.0f\n", "true cardinality", truth)
	fmt.Printf("%-28s %14.0f\n", "noSit (independence)",
		db.NewEstimator(noSit, condsel.NInd).Cardinality(q))
	fmt.Printf("%-28s %14.0f\n", "GVM (greedy view matching)",
		db.NewGVMEstimator(stats).Cardinality(q))
	for _, m := range []condsel.Model{condsel.NInd, condsel.Diff, condsel.Opt} {
		fmt.Printf("%-28s %14.0f\n", "getSelectivity / "+m.String(),
			db.NewEstimator(stats, m).Cardinality(q))
	}

	fmt.Println("\nchosen decomposition (Diff):")
	fmt.Print(db.NewEstimator(stats, condsel.Diff).Explain(q))

	if q.NumJoins() > 0 {
		if plan, cost, err := db.NewEstimator(stats, condsel.Diff).BestPlan(q); err == nil {
			fmt.Printf("\nbest join order (C_out %.0f): %s\n", cost, plan)
		}
	}
}

func buildQuery(db *condsel.DB, joins, filters repeated, seed int64) (*condsel.Query, error) {
	if len(joins) == 0 && len(filters) == 0 {
		wl, err := db.GenerateWorkload(condsel.WorkloadOptions{Seed: seed, NumQueries: 1, Joins: 3, Filters: 3})
		if err != nil {
			return nil, err
		}
		return wl[0], nil
	}
	b := db.Query()
	for _, j := range joins {
		parts := strings.SplitN(j, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -join %q, want left=right", j)
		}
		b = b.Join(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
	}
	for _, f := range filters {
		parts := strings.Split(f, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -filter %q, want attr:lo:hi", f)
		}
		lo, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -filter lo in %q: %v", f, err)
		}
		hi, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -filter hi in %q: %v", f, err)
		}
		b = b.Filter(strings.TrimSpace(parts[0]), lo, hi)
	}
	return b.Build()
}
