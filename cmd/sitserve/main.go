// Command sitserve runs the estimation service: the robust ladder behind an
// overload-safe HTTP front end with admission control, deadline-mapped
// degradation, SLO-driven tier capping, Prometheus metrics and graceful
// drain. It provisions the paper's synthetic snowflake database and a
// lifecycle-managed SIT pool, then serves estimates until SIGTERM/SIGINT,
// at which point it stops admitting, drains in-flight requests and flushes
// a final SITSNAP checkpoint (when -snapdir is set).
//
// Usage:
//
//	sitserve [-addr :8080] [-fact N] [-seed N] [-queries N] [-joins N]
//	         [-maxpool N] [-deadline-ms N] [-max-deadline-ms N]
//	         [-concurrency N] [-queue N] [-slo-ms N] [-cache N]
//	         [-snapdir DIR] [-drain-s N]
//
// Endpoints:
//
//	GET/POST /estimate        one query (?q= or body), JSON estimate
//	GET/POST /estimate/batch  newline-separated queries, JSON array
//	GET      /metrics         Prometheus text exposition
//	GET      /healthz         liveness (always 200 while the process runs)
//	GET      /readyz          readiness (503 once draining)
//
// Per-request deadlines: X-Condsel-Deadline-Ms header or ?deadline_ms=.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"condsel/internal/core"
	"condsel/internal/datagen"
	"condsel/internal/lifecycle"
	"condsel/internal/serve"
	"condsel/internal/sit"
	"condsel/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		fact        = flag.Int("fact", 20000, "fact table rows")
		seed        = flag.Int64("seed", 42, "random seed")
		queries     = flag.Int("queries", 25, "workload queries used to build the SIT pool")
		joins       = flag.Int("joins", 3, "joins per workload query")
		maxPool     = flag.Int("maxpool", 3, "largest SIT pool J_i to build")
		deadlineMs  = flag.Int("deadline-ms", 250, "default per-request deadline")
		maxDeadline = flag.Int("max-deadline-ms", 5000, "largest accepted per-request deadline")
		concurrency = flag.Int("concurrency", 0, "admission slots (0: GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "admission wait-queue bound (0: 4x slots)")
		sloMs       = flag.Int("slo-ms", 500, "p99 latency SLO target (negative disables)")
		cacheCap    = flag.Int("cache", 4096, "selectivity cache capacity (0 disables)")
		snapDir     = flag.String("snapdir", "", "SITSNAP checkpoint directory (empty disables persistence)")
		drainS      = flag.Int("drain-s", 10, "graceful-drain deadline in seconds")
	)
	flag.Parse()
	// The process-root context is minted here and only here ("no minted
	// roots past main"): cancelled on SIGTERM/SIGINT, everything below
	// inherits it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, stop, *addr, options{
		fact: *fact, seed: *seed, queries: *queries, joins: *joins, maxPool: *maxPool,
		deadline:    time.Duration(*deadlineMs) * time.Millisecond,
		maxDeadline: time.Duration(*maxDeadline) * time.Millisecond,
		concurrency: *concurrency, queue: *queue,
		slo:      time.Duration(*sloMs) * time.Millisecond,
		cacheCap: *cacheCap, snapDir: *snapDir,
		drain: time.Duration(*drainS) * time.Second,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sitserve:", err)
		os.Exit(1)
	}
}

type options struct {
	fact        int
	seed        int64
	queries     int
	joins       int
	maxPool     int
	deadline    time.Duration
	maxDeadline time.Duration
	concurrency int
	queue       int
	slo         time.Duration
	cacheCap    int
	snapDir     string
	drain       time.Duration
}

func run(ctx context.Context, stop context.CancelFunc, addr string, opt options) error {
	fmt.Printf("sitserve: generating snowflake database (fact=%d seed=%d)\n", opt.fact, opt.seed)
	db := datagen.Generate(datagen.Config{Seed: opt.seed, FactRows: opt.fact})
	gen := workload.NewGenerator(db, workload.Config{
		Seed: opt.seed, NumQueries: opt.queries, Joins: opt.joins, Filters: 3,
	})
	wl, err := gen.Generate()
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	fmt.Printf("sitserve: building SIT pool J%d over %d queries\n", opt.maxPool, len(wl))
	pool := sit.BuildWorkloadPoolParallel(db.Cat, wl, opt.maxPool, runtime.GOMAXPROCS(0), nil)

	var cache *core.SelCacheStore
	if opt.cacheCap > 0 {
		cache = core.NewSelCache(opt.cacheCap)
	}
	lcfg := lifecycle.Config{Dir: opt.snapDir, Cache: cache, Seed: opt.seed}
	var mgr *lifecycle.Manager
	if opt.snapDir != "" {
		// Recover from the newest intact checkpoint when one exists; the
		// freshly built pool is only the fallback.
		mgr, err = lifecycle.Open(db.Cat, pool, lcfg)
		if err != nil {
			return fmt.Errorf("lifecycle: %w", err)
		}
	} else {
		mgr = lifecycle.New(db.Cat, pool, lcfg)
	}
	if err := mgr.Start(ctx); err != nil {
		return fmt.Errorf("lifecycle: %w", err)
	}

	srv, err := serve.New(serve.Config{
		Catalog:         db.Cat,
		Estimator:       serve.LadderSource(mgr.Estimator),
		MaxConcurrent:   opt.concurrency,
		MaxQueue:        opt.queue,
		DefaultDeadline: opt.deadline,
		MaxDeadline:     opt.maxDeadline,
		SLO:             serve.SLOConfig{TargetP99: opt.slo},
		DrainDeadline:   opt.drain,
		Cache:           cache,
		Pool:            func() *sit.Pool { return mgr.Estimator().Pool },
		Lifecycle:       mgr,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("sitserve: listening on %s (pool generation %d)\n", ln.Addr(), mgr.Generation())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		_ = mgr.Stop()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, finish in-flight work under the drain
	// deadline, then flush the final checkpoint through the lifecycle
	// manager. stop() restores default signal handling first, so a second
	// SIGTERM kills the process instead of being swallowed mid-drain.
	stop()
	fmt.Println("sitserve: draining")
	// The drain budget hangs off the root via WithoutCancel: the root is
	// already cancelled (that is why we are draining), but the drain itself
	// still deserves its own deadline rather than a minted Background.
	drainCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), opt.drain+time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(drainCtx)
	if err := mgr.Stop(); err != nil {
		return fmt.Errorf("lifecycle stop: %w", err)
	}
	if opt.snapDir != "" {
		fmt.Printf("sitserve: final checkpoint flushed to %s\n", opt.snapDir)
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	fmt.Println("sitserve: drained cleanly")
	return nil
}
